//! IR edit representation for repair synthesis and transfer minimization.
//!
//! A [`Patch`] is an ordered list of [`Edit`]s over a [`Program`]'s
//! construct tree. Edits address nodes by *paths*: a path is the sequence
//! of child indices walked from the top-level node list, descending only
//! through [`Node::TargetData`] and [`Node::Loop`] bodies (branch arms are
//! not addressable — the repair engine never needs to edit inside an
//! `if`, and keeping paths linear keeps application unambiguous).
//!
//! The module also carries the patch pretty-printer: a stable line
//! renderer for programs ([`render_program`]) and an LCS-based unified
//! diff ([`unified_diff`]), so `arbalest fix` can show a byte-stable
//! "IR diff" for every synthesized repair and golden tests can assert it.

use crate::{BufId, Certainty, MapClause, Node, Program, Sect};
use arbalest_offload::json::Json;
use arbalest_offload::mapping::MapType;
use std::fmt;

/// Why a patch failed to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// A path addressed no node (index out of range, or descent through a
    /// node that has no addressable body).
    BadPath {
        /// The offending path.
        path: Vec<usize>,
    },
    /// A clause index addressed no map clause on the target node.
    BadClause {
        /// Path of the node whose clause list was indexed.
        path: Vec<usize>,
        /// The offending clause index.
        clause: usize,
    },
    /// A buffer id outside the program's declaration table.
    NoSuchBuffer {
        /// The offending buffer id.
        buf: u32,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::BadPath { path } => write!(f, "patch path {path:?} addresses no node"),
            PatchError::BadClause { path, clause } => {
                write!(f, "node at {path:?} has no map clause #{clause}")
            }
            PatchError::NoSuchBuffer { buf } => write!(f, "no buffer #{buf} in the program"),
        }
    }
}

impl std::error::Error for PatchError {}

/// One atomic edit of a program. The vocabulary matches the repair
/// engine's synthesis lattice: strengthen/weaken a map-type, fix a map
/// section, add a missing clause, insert an `update` or a sync, drop a
/// redundant node, or record host initialisation.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Replace the map-type of clause `clause` on the node at `path`.
    SetMapType {
        /// Path of the mapping construct.
        path: Vec<usize>,
        /// Index into the node's clause list.
        clause: usize,
        /// The new map-type.
        map_type: MapType,
    },
    /// Replace the section of clause `clause` on the node at `path`.
    SetMapSect {
        /// Path of the mapping construct.
        path: Vec<usize>,
        /// Index into the node's clause list.
        clause: usize,
        /// The new section.
        sect: Sect,
    },
    /// Append a map clause to the node at `path`.
    AddMapClause {
        /// Path of the mapping construct.
        path: Vec<usize>,
        /// The clause to append.
        clause: MapClause,
    },
    /// Insert `target update to(...)`/`from(...)` at position `at` — the
    /// last path element is the insertion index into the parent body.
    InsertUpdate {
        /// Insertion point (parent path + index, `0..=len`).
        at: Vec<usize>,
        /// `update to` (host → device) vs `update from`.
        to_device: bool,
        /// The transferred buffer.
        buf: BufId,
    },
    /// Insert a `taskwait` at position `at` (same addressing as
    /// [`Edit::InsertUpdate`]), syncing pending `nowait` constructs
    /// before a host access.
    InsertTaskwait {
        /// Insertion point (parent path + index, `0..=len`).
        at: Vec<usize>,
    },
    /// Remove the node at `at` (used by `optimize` to drop a dead
    /// `update`).
    RemoveNode {
        /// Path of the node to remove.
        at: Vec<usize>,
    },
    /// Mark a buffer as definitely host-initialised before the first
    /// construct (the "add the missing init loop" repair for UUM on a
    /// never-written original variable).
    SetHostInit {
        /// The buffer to initialise.
        buf: BufId,
    },
}

/// An ordered list of edits. Edits apply sequentially, each against the
/// program produced by its predecessors, so a greedy engine can simply
/// accumulate the edits it accepted.
#[derive(Debug, Clone, Default)]
pub struct Patch {
    /// The edits, in application order.
    pub edits: Vec<Edit>,
}

impl Patch {
    /// A patch of a single edit.
    pub fn single(edit: Edit) -> Patch {
        Patch { edits: vec![edit] }
    }

    /// Apply all edits to `p`, returning the patched program (the input
    /// is untouched).
    pub fn apply(&self, p: &Program) -> Result<Program, PatchError> {
        let mut out = p.clone();
        for e in &self.edits {
            apply_edit(e, &mut out)?;
        }
        Ok(out)
    }

    /// One human line per edit, described against the program each edit
    /// actually applies to (edits later in the list see their
    /// predecessors' effects).
    pub fn describe(&self, p: &Program) -> Result<Vec<String>, PatchError> {
        let mut cur = p.clone();
        let mut lines = Vec::with_capacity(self.edits.len());
        for e in &self.edits {
            lines.push(describe_edit(e, &cur)?);
            apply_edit(e, &mut cur)?;
        }
        Ok(lines)
    }

    /// Unified "IR diff" between `p` and the patched program.
    pub fn render_diff(&self, p: &Program) -> Result<String, PatchError> {
        let patched = self.apply(p)?;
        let old = render_program(p);
        let new = render_program(&patched);
        Ok(unified_diff(&old, &new, &p.name, 3))
    }

    /// JSON document for `--format json`: the edit list (op, addressing,
    /// payload, human description).
    pub fn to_json(&self, p: &Program) -> Result<Json, PatchError> {
        let mut cur = p.clone();
        let mut edits = Vec::with_capacity(self.edits.len());
        for e in &self.edits {
            edits.push(edit_json(e, &cur)?);
            apply_edit(e, &mut cur)?;
        }
        Ok(Json::obj(vec![("edits", Json::Arr(edits))]))
    }
}

fn path_json(path: &[usize]) -> Json {
    Json::Arr(path.iter().map(|&i| Json::int(i as u64)).collect())
}

fn edit_json(e: &Edit, p: &Program) -> Result<Json, PatchError> {
    let describe = describe_edit(e, p)?;
    let mut fields: Vec<(String, Json)> = Vec::new();
    match e {
        Edit::SetMapType { path, clause, map_type } => {
            fields.push(("op".to_string(), Json::str("set-map-type")));
            fields.push(("path".to_string(), path_json(path)));
            fields.push(("clause".to_string(), Json::int(*clause as u64)));
            fields.push(("map_type".to_string(), Json::str(map_type)));
        }
        Edit::SetMapSect { path, clause, sect } => {
            fields.push(("op".to_string(), Json::str("set-map-sect")));
            fields.push(("path".to_string(), path_json(path)));
            fields.push(("clause".to_string(), Json::int(*clause as u64)));
            fields.push(("sect".to_string(), Json::str(sect_suffix(sect))));
        }
        Edit::AddMapClause { path, clause } => {
            fields.push(("op".to_string(), Json::str("add-map-clause")));
            fields.push(("path".to_string(), path_json(path)));
            fields.push(("map_type".to_string(), Json::str(clause.map_type)));
            fields.push(("buffer".to_string(), Json::str(buf_name(p, clause.buf)?)));
            fields.push(("sect".to_string(), Json::str(sect_suffix(&clause.sect))));
        }
        Edit::InsertUpdate { at, to_device, buf } => {
            fields.push(("op".to_string(), Json::str("insert-update")));
            fields.push(("path".to_string(), path_json(at)));
            fields.push(("direction".to_string(), Json::str(if *to_device { "to" } else { "from" })));
            fields.push(("buffer".to_string(), Json::str(buf_name(p, *buf)?)));
        }
        Edit::InsertTaskwait { at } => {
            fields.push(("op".to_string(), Json::str("insert-taskwait")));
            fields.push(("path".to_string(), path_json(at)));
        }
        Edit::RemoveNode { at } => {
            fields.push(("op".to_string(), Json::str("remove-node")));
            fields.push(("path".to_string(), path_json(at)));
        }
        Edit::SetHostInit { buf } => {
            fields.push(("op".to_string(), Json::str("set-host-init")));
            fields.push(("buffer".to_string(), Json::str(buf_name(p, *buf)?)));
        }
    }
    fields.push(("describe".to_string(), Json::Str(describe)));
    Ok(Json::Obj(fields))
}

fn buf_name(p: &Program, buf: BufId) -> Result<&str, PatchError> {
    p.buffers
        .get(buf.0 as usize)
        .map(|d| d.name.as_str())
        .ok_or(PatchError::NoSuchBuffer { buf: buf.0 })
}

/// The node's map-clause list, for the four mapping constructs.
fn maps_of_mut(n: &mut Node) -> Option<&mut Vec<MapClause>> {
    match n {
        Node::Target(t) => Some(&mut t.maps),
        Node::TargetData { maps, .. } | Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => Some(maps),
        _ => None,
    }
}

/// Immutable twin of [`maps_of_mut`].
fn maps_of(n: &Node) -> Option<&Vec<MapClause>> {
    match n {
        Node::Target(t) => Some(&t.maps),
        Node::TargetData { maps, .. } | Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => Some(maps),
        _ => None,
    }
}

fn node_at_mut<'a>(nodes: &'a mut [Node], path: &[usize], full: &[usize]) -> Result<&'a mut Node, PatchError> {
    let bad = || PatchError::BadPath { path: full.to_vec() };
    let (&i, rest) = path.split_first().ok_or_else(bad)?;
    let n = nodes.get_mut(i).ok_or_else(bad)?;
    if rest.is_empty() {
        return Ok(n);
    }
    match n {
        Node::TargetData { body, .. } | Node::Loop { body, .. } => node_at_mut(body, rest, full),
        _ => Err(bad()),
    }
}

/// Resolve the node a full path addresses, immutably.
pub fn node_at<'a>(p: &'a Program, path: &[usize]) -> Option<&'a Node> {
    let mut nodes = &p.nodes;
    let (last, parents) = path.split_last()?;
    for &i in parents {
        match nodes.get(i)? {
            Node::TargetData { body, .. } | Node::Loop { body, .. } => nodes = body,
            _ => return None,
        }
    }
    nodes.get(*last)
}

fn body_at_mut<'a>(nodes: &'a mut Vec<Node>, path: &[usize], full: &[usize]) -> Result<&'a mut Vec<Node>, PatchError> {
    let bad = || PatchError::BadPath { path: full.to_vec() };
    match path.split_first() {
        None => Ok(nodes),
        Some((&i, rest)) => match nodes.get_mut(i).ok_or_else(bad)? {
            Node::TargetData { body, .. } | Node::Loop { body, .. } => body_at_mut(body, rest, full),
            _ => Err(bad()),
        },
    }
}

fn apply_edit(e: &Edit, p: &mut Program) -> Result<(), PatchError> {
    match e {
        Edit::SetMapType { path, clause, map_type } => {
            let n = node_at_mut(&mut p.nodes, path, path)?;
            let maps = maps_of_mut(n).ok_or(PatchError::BadPath { path: path.clone() })?;
            let c = maps.get_mut(*clause).ok_or(PatchError::BadClause { path: path.clone(), clause: *clause })?;
            c.map_type = *map_type;
        }
        Edit::SetMapSect { path, clause, sect } => {
            let n = node_at_mut(&mut p.nodes, path, path)?;
            let maps = maps_of_mut(n).ok_or(PatchError::BadPath { path: path.clone() })?;
            let c = maps.get_mut(*clause).ok_or(PatchError::BadClause { path: path.clone(), clause: *clause })?;
            c.sect = sect.clone();
        }
        Edit::AddMapClause { path, clause } => {
            if clause.buf.0 as usize >= p.buffers.len() {
                return Err(PatchError::NoSuchBuffer { buf: clause.buf.0 });
            }
            let n = node_at_mut(&mut p.nodes, path, path)?;
            let maps = maps_of_mut(n).ok_or(PatchError::BadPath { path: path.clone() })?;
            maps.push(clause.clone());
        }
        Edit::InsertUpdate { at, to_device, buf } => {
            if buf.0 as usize >= p.buffers.len() {
                return Err(PatchError::NoSuchBuffer { buf: buf.0 });
            }
            let (pos, parents) = at.split_last().ok_or(PatchError::BadPath { path: at.clone() })?;
            let body = body_at_mut(&mut p.nodes, parents, at)?;
            if *pos > body.len() {
                return Err(PatchError::BadPath { path: at.clone() });
            }
            body.insert(
                *pos,
                Node::Update { device: arbalest_offload::addr::DeviceId::ACCEL0, to_device: *to_device, buf: *buf },
            );
        }
        Edit::InsertTaskwait { at } => {
            let (pos, parents) = at.split_last().ok_or(PatchError::BadPath { path: at.clone() })?;
            let body = body_at_mut(&mut p.nodes, parents, at)?;
            if *pos > body.len() {
                return Err(PatchError::BadPath { path: at.clone() });
            }
            body.insert(*pos, Node::Taskwait);
        }
        Edit::RemoveNode { at } => {
            let (pos, parents) = at.split_last().ok_or(PatchError::BadPath { path: at.clone() })?;
            let body = body_at_mut(&mut p.nodes, parents, at)?;
            if *pos >= body.len() {
                return Err(PatchError::BadPath { path: at.clone() });
            }
            body.remove(*pos);
        }
        Edit::SetHostInit { buf } => {
            let d = p.buffers.get_mut(buf.0 as usize).ok_or(PatchError::NoSuchBuffer { buf: buf.0 })?;
            d.host_init = Some((Certainty::Must, Sect::Full));
        }
    }
    Ok(())
}

fn describe_edit(e: &Edit, p: &Program) -> Result<String, PatchError> {
    Ok(match e {
        Edit::SetMapType { path, clause, map_type } => {
            let (name, old) = clause_info(p, path, *clause)?;
            format!("map({old}: {name}) -> map({map_type}: {name})")
        }
        Edit::SetMapSect { path, clause, sect } => {
            let (name, _) = clause_info(p, path, *clause)?;
            let old = clause_sect(p, path, *clause)?;
            format!("map section {name}{} -> {name}{}", sect_suffix(&old), sect_suffix(sect))
        }
        Edit::AddMapClause { path: _, clause } => {
            let name = buf_name(p, clause.buf)?;
            format!("add map({}: {name}{})", clause.map_type, sect_suffix(&clause.sect))
        }
        Edit::InsertUpdate { at: _, to_device, buf } => {
            let name = buf_name(p, *buf)?;
            format!("insert target update {}({name})", if *to_device { "to" } else { "from" })
        }
        Edit::InsertTaskwait { .. } => "insert taskwait".to_string(),
        Edit::RemoveNode { at } => {
            let n = node_at(p, at).ok_or(PatchError::BadPath { path: at.clone() })?;
            format!("remove {}", node_head(n, p))
        }
        Edit::SetHostInit { buf } => {
            let name = buf_name(p, *buf)?;
            format!("initialise {name} on the host before the first construct")
        }
    })
}

fn clause_info<'a>(p: &'a Program, path: &[usize], clause: usize) -> Result<(&'a str, MapType), PatchError> {
    let n = node_at(p, path).ok_or(PatchError::BadPath { path: path.to_vec() })?;
    let maps = maps_of(n).ok_or(PatchError::BadPath { path: path.to_vec() })?;
    let c = maps.get(clause).ok_or(PatchError::BadClause { path: path.to_vec(), clause })?;
    Ok((buf_name(p, c.buf)?, c.map_type))
}

fn clause_sect(p: &Program, path: &[usize], clause: usize) -> Result<Sect, PatchError> {
    let n = node_at(p, path).ok_or(PatchError::BadPath { path: path.to_vec() })?;
    let maps = maps_of(n).ok_or(PatchError::BadPath { path: path.to_vec() })?;
    let c = maps.get(clause).ok_or(PatchError::BadClause { path: path.to_vec(), clause })?;
    Ok(c.sect.clone())
}

/// Walk every node of the construct tree in program order, handing the
/// visitor each node's full path (the addressing [`Edit`]s use). Branch
/// arms are walked too — with the *parent `if`'s* path, since arms are
/// not independently addressable.
pub fn walk_paths<F: FnMut(&[usize], &Node)>(p: &Program, f: &mut F) {
    fn go<F: FnMut(&[usize], &Node)>(nodes: &[Node], prefix: &mut Vec<usize>, f: &mut F) {
        for (i, n) in nodes.iter().enumerate() {
            prefix.push(i);
            f(prefix, n);
            match n {
                Node::TargetData { body, .. } | Node::Loop { body, .. } => go(body, prefix, f),
                Node::If { then_, else_, .. } => {
                    // Arms share the `if`'s own path: visible, not editable.
                    let at = prefix.clone();
                    for m in then_.iter().chain(else_) {
                        f(&at, m);
                    }
                }
                _ => {}
            }
            prefix.pop();
        }
    }
    let mut prefix = Vec::new();
    go(&p.nodes, &mut prefix, f);
}

// ---------------------------------------------------------------------------
// Pretty-printer: stable line rendering + unified diff.
// ---------------------------------------------------------------------------

/// Render a section as the `[start:len]` suffix of OpenMP array-section
/// syntax; `Full` renders as the bare name (empty suffix).
pub fn sect_suffix(s: &Sect) -> String {
    match s {
        Sect::Full => String::new(),
        Sect::Elems { start, len } => format!("[{start}:{len}]"),
        Sect::Sym { start, len } => format!("[{start}:{len}]"),
    }
}

fn map_str(p: &Program, c: &MapClause) -> String {
    let name = p.buffers.get(c.buf.0 as usize).map(|d| d.name.as_str()).unwrap_or("?");
    format!("map({}: {name}{})", c.map_type, sect_suffix(&c.sect))
}

fn access_str(p: &Program, a: &crate::Access) -> String {
    let name = p.buffers.get(a.buf.0 as usize).map(|d| d.name.as_str()).unwrap_or("?");
    let may = if a.certainty == Certainty::May { "may-" } else { "" };
    let rw = if a.is_write { "write" } else { "read" };
    format!("{may}{rw} {name}{}", sect_suffix(&a.sect))
}

fn device_suffix(d: arbalest_offload::addr::DeviceId) -> String {
    if d == arbalest_offload::addr::DeviceId::ACCEL0 {
        String::new()
    } else {
        format!(" device({})", d.0)
    }
}

/// First line of a node's rendering (no body, no trailing `{`) — used by
/// edit descriptions ("remove target update from(a)").
fn node_head(n: &Node, p: &Program) -> String {
    match n {
        Node::Target(t) => {
            let mut s = format!("target{}", device_suffix(t.device));
            if t.nowait {
                s.push_str(" nowait");
            }
            for d in &t.depends {
                s.push_str(&format!(" depend({}: {})", if d.is_write { "out" } else { "in" }, p.buffers.get(d.buf.0 as usize).map(|b| b.name.as_str()).unwrap_or("?")));
            }
            for c in &t.maps {
                s.push(' ');
                s.push_str(&map_str(p, c));
            }
            s
        }
        Node::TargetData { device, maps, .. } => {
            let mut s = format!("target data{}", device_suffix(*device));
            for c in maps {
                s.push(' ');
                s.push_str(&map_str(p, c));
            }
            s
        }
        Node::EnterData { device, maps } => {
            let mut s = format!("target enter data{}", device_suffix(*device));
            for c in maps {
                s.push(' ');
                s.push_str(&map_str(p, c));
            }
            s
        }
        Node::ExitData { device, maps } => {
            let mut s = format!("target exit data{}", device_suffix(*device));
            for c in maps {
                s.push(' ');
                s.push_str(&map_str(p, c));
            }
            s
        }
        Node::Update { device, to_device, buf } => {
            let name = p.buffers.get(buf.0 as usize).map(|d| d.name.as_str()).unwrap_or("?");
            format!(
                "target update {}({name}){}",
                if *to_device { "to" } else { "from" },
                device_suffix(*device)
            )
        }
        Node::Host(a) => format!("host {}", access_str(p, a)),
        Node::Taskwait => "taskwait".to_string(),
        Node::Wait { target } => format!("wait target#{}", target.0),
        Node::If { may_taken, .. } => format!("if{}", if *may_taken { " may" } else { "" }),
        Node::Loop { trip, .. } => format!("loop {}", trip.0),
    }
}

/// Render a program as stable lines: header, parameters, buffer
/// declarations, then the construct tree (two-space indent per level).
/// The output is deterministic — golden tests assert it byte-for-byte.
pub fn render_program(p: &Program) -> Vec<String> {
    let mut out = Vec::new();
    out.push(format!("program {}", p.name));
    for d in &p.params {
        match d.max {
            Some(max) => out.push(format!("param {} in [{}, {max}]", d.name, d.min)),
            None => out.push(format!("param {} >= {}", d.name, d.min)),
        }
    }
    for d in &p.buffers {
        let len = match &d.sym_len {
            Some(e) => e.to_string(),
            None => d.len.to_string(),
        };
        let mut line = format!("buffer {}: {}B x {len}", d.name, d.elem_size);
        if let Some((c, s)) = &d.host_init {
            let may = if *c == Certainty::May { "may-" } else { "" };
            line.push_str(&format!(", {may}host-init{}", sect_suffix(s)));
        }
        out.push(line);
    }
    fn go(nodes: &[Node], depth: usize, p: &Program, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        for n in nodes {
            match n {
                Node::Target(t) => {
                    if t.body.is_empty() {
                        out.push(format!("{pad}{} {{}}", node_head(n, p)));
                    } else {
                        out.push(format!("{pad}{} {{", node_head(n, p)));
                        for a in &t.body {
                            out.push(format!("{pad}  {}", access_str(p, a)));
                        }
                        out.push(format!("{pad}}}"));
                    }
                }
                Node::TargetData { body, .. } | Node::Loop { body, .. } => {
                    out.push(format!("{pad}{} {{", node_head(n, p)));
                    go(body, depth + 1, p, out);
                    out.push(format!("{pad}}}"));
                }
                Node::If { then_, else_, .. } => {
                    out.push(format!("{pad}{} {{", node_head(n, p)));
                    go(then_, depth + 1, p, out);
                    if !else_.is_empty() {
                        out.push(format!("{pad}}} else {{"));
                        go(else_, depth + 1, p, out);
                    }
                    out.push(format!("{pad}}}"));
                }
                _ => out.push(format!("{pad}{}", node_head(n, p))),
            }
        }
    }
    go(&p.nodes, 0, p, &mut out);
    out
}

/// A classic LCS-based unified diff over rendered lines, with `context`
/// lines of context and `--- a/… +++ b/…` headers. Quadratic, which is
/// fine: rendered IR programs are tens of lines.
pub fn unified_diff(old: &[String], new: &[String], name: &str, context: usize) -> String {
    // LCS table.
    let (n, m) = (old.len(), new.len());
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if old[i] == new[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    // Walk into an edit script: (tag, old_idx, new_idx); tag ' ', '-', '+'.
    let mut script: Vec<(char, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            script.push((' ', i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            script.push(('-', i, j));
            i += 1;
        } else {
            script.push(('+', i, j));
            j += 1;
        }
    }
    while i < n {
        script.push(('-', i, j));
        i += 1;
    }
    while j < m {
        script.push(('+', i, j));
        j += 1;
    }
    if script.iter().all(|&(t, _, _)| t == ' ') {
        return String::new();
    }
    // Group changed runs into hunks with `context` lines around them.
    let changed: Vec<usize> = script
        .iter()
        .enumerate()
        .filter(|(_, &(t, _, _))| t != ' ')
        .map(|(k, _)| k)
        .collect();
    let mut out = String::new();
    out.push_str(&format!("--- a/{name}\n+++ b/{name}\n"));
    let mut k = 0;
    while k < changed.len() {
        let start = changed[k].saturating_sub(context);
        let mut end = changed[k] + context;
        let mut k2 = k + 1;
        while k2 < changed.len() && changed[k2] <= end + context + 1 {
            end = changed[k2] + context;
            k2 += 1;
        }
        let end = end.min(script.len().saturating_sub(1));
        // Hunk header positions are 1-based; empty sides render as 0.
        let (o_start, n_start) = (script[start].1, script[start].2);
        let o_count = script[start..=end].iter().filter(|&&(t, _, _)| t != '+').count();
        let n_count = script[start..=end].iter().filter(|&&(t, _, _)| t != '-').count();
        let o_disp = if o_count == 0 { o_start } else { o_start + 1 };
        let n_disp = if n_count == 0 { n_start } else { n_start + 1 };
        out.push_str(&format!("@@ -{o_disp},{o_count} +{n_disp},{n_count} @@\n"));
        for &(t, oi, nj) in &script[start..=end] {
            let line = match t {
                '-' | ' ' => &old[oi],
                _ => &new[nj],
            };
            out.push(t);
            out.push_str(line);
            out.push('\n');
        }
        k = k2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn toy() -> Program {
        let mut p = ProgramBuilder::new("toy");
        let a = p.buffer_init("a", 8, 4);
        p.target().map_alloc(a).reads(a).done();
        p.host_read(a);
        p.build()
    }

    #[test]
    fn set_map_type_applies_and_describes() {
        let p = toy();
        let patch = Patch::single(Edit::SetMapType { path: vec![0], clause: 0, map_type: MapType::To });
        let q = patch.apply(&p).unwrap();
        match &q.nodes[0] {
            Node::Target(t) => assert!(matches!(t.maps[0].map_type, MapType::To)),
            _ => panic!(),
        }
        assert_eq!(patch.describe(&p).unwrap(), vec!["map(alloc: a) -> map(to: a)"]);
        let diff = patch.render_diff(&p).unwrap();
        assert!(diff.contains("-target map(alloc: a) {"), "{diff}");
        assert!(diff.contains("+target map(to: a) {"), "{diff}");
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let p = toy();
        let ins = Patch::single(Edit::InsertUpdate { at: vec![1], to_device: false, buf: BufId(0) });
        let q = ins.apply(&p).unwrap();
        assert_eq!(q.nodes.len(), 3);
        assert!(matches!(q.nodes[1], Node::Update { to_device: false, .. }));
        let rm = Patch::single(Edit::RemoveNode { at: vec![1] });
        let r = rm.apply(&q).unwrap();
        assert_eq!(r.nodes.len(), 2);
        assert_eq!(render_program(&r), render_program(&p));
    }

    #[test]
    fn bad_paths_are_typed_errors() {
        let p = toy();
        let e = Patch::single(Edit::RemoveNode { at: vec![9] }).apply(&p).unwrap_err();
        assert!(matches!(e, PatchError::BadPath { .. }));
        let e = Patch::single(Edit::SetMapType { path: vec![0], clause: 7, map_type: MapType::To })
            .apply(&p)
            .unwrap_err();
        assert!(matches!(e, PatchError::BadClause { .. }));
        let e = Patch::single(Edit::SetHostInit { buf: BufId(9) }).apply(&p).unwrap_err();
        assert!(matches!(e, PatchError::NoSuchBuffer { .. }));
    }

    #[test]
    fn unified_diff_is_empty_for_identical_inputs() {
        let lines = render_program(&toy());
        assert_eq!(unified_diff(&lines, &lines, "toy", 3), "");
    }

    #[test]
    fn set_host_init_marks_the_declaration() {
        let mut b = ProgramBuilder::new("uninit");
        let a = b.buffer("a", 8, 4);
        b.target().map_alloc(a).reads(a).done();
        let p = b.build();
        let q = Patch::single(Edit::SetHostInit { buf: a }).apply(&p).unwrap();
        assert!(matches!(q.buffers[0].host_init, Some((Certainty::Must, Sect::Full))));
    }
}
