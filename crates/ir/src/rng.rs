//! Tiny deterministic PRNG (SplitMix64) shared by `concretize` branch
//! resolution, the program generator, and the interpreter's may-access
//! coins. Deterministic across platforms and runs: the same seed always
//! yields the same stream, which is what makes `arbalest fuzz-lint`
//! reproducible from a seed number alone.

/// SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).saturating_add(1))
    }

    /// A coin that lands `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..256 {
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
            assert!(r.below(5) < 5);
        }
        assert_eq!(r.below(0), 0);
    }
}
