//! # arbalest-ir
//!
//! A small offload-program IR: the structured construct tree a static
//! analyzer needs and the runtime-constructed benchmarks do not have
//! (DESIGN.md §9's historical gap, closed by `arbalest lint`).
//!
//! A [`Program`] declares named buffers ([`BufferDecl`]) and a tree of
//! [`Node`]s mirroring the OpenMP device constructs the runtime offers:
//! `target` (with maps, `nowait`, `depend`), `target data` regions,
//! unstructured `enter`/`exit data`, `target update`, host code blocks,
//! and `taskwait`. The leaves are **may/must read/write sets** over
//! buffers and element-granular array sections ([`Access`]): a `Must`
//! access happens on every execution of the program, a `May` access is
//! data-dependent (conditional writes, unknown gather indices, inputs
//! whose initialisation cannot be decided statically).
//!
//! Programs are hand-authored through [`ProgramBuilder`] and validated
//! against the runtime two ways (both enforced in `tests/`):
//!
//! * buffer declarations must match the runtime's registrations
//!   (name, element size, length), and
//! * replaying a recorded trace must touch no buffer/section outside
//!   the IR's may-sets — the IR is a *sound abstraction* of the
//!   program's behaviour, which is what makes `Must` diagnostics from
//!   the static checker trustworthy.

#![warn(missing_docs)]

use arbalest_offload::addr::DeviceId;
use arbalest_offload::mapping::MapType;

/// Index of a buffer declaration within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

/// Identifier of a `target` construct, for [`Node::Wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetId(pub u32);

/// An array section in element units. `Full` resolves to the whole
/// declared extent; `Elems` may deliberately exceed it (that is exactly
/// the wrong-array-section bug class DRACC seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sect {
    /// The buffer's whole declared extent.
    Full,
    /// `buf[start : start+len]` in elements.
    Elems {
        /// First element.
        start: u64,
        /// Element count.
        len: u64,
    },
}

impl Sect {
    /// Resolve to an element interval `[start, end)` against a declared
    /// length. `Full` is clamped to the declaration; `Elems` is not.
    pub fn resolve(self, decl_len: u64) -> (u64, u64) {
        match self {
            Sect::Full => (0, decl_len),
            Sect::Elems { start, len } => (start, start + len),
        }
    }
}

/// Whether a fact holds on every execution or only on some.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// Holds on every execution.
    Must,
    /// Data-dependent: holds on some executions.
    May,
}

/// One read or write of a buffer section. Within a kernel or host block
/// the accesses are ordered (program order), so "write then read" scratch
/// patterns analyze correctly.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Accessed buffer.
    pub buf: BufId,
    /// Accessed section (element units).
    pub sect: Sect,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// `Must` if the access happens on every execution.
    pub certainty: Certainty,
}

/// One `map` clause.
#[derive(Debug, Clone, Copy)]
pub struct MapClause {
    /// Mapped buffer.
    pub buf: BufId,
    /// OpenMP map-type (Table I semantics).
    pub map_type: MapType,
    /// Mapped section (element units).
    pub sect: Sect,
}

/// One `depend` clause on a `target ... nowait` construct.
#[derive(Debug, Clone, Copy)]
pub struct DependClause {
    /// The dependence object (a buffer stands in for the C pointer).
    pub buf: BufId,
    /// `depend(out/inout)` vs `depend(in)`.
    pub is_write: bool,
}

/// A `target` construct.
#[derive(Debug, Clone)]
pub struct TargetNode {
    /// Identity, referenced by [`Node::Wait`].
    pub id: TargetId,
    /// Executing device.
    pub device: DeviceId,
    /// `nowait` clause present.
    pub nowait: bool,
    /// `depend` clauses.
    pub depends: Vec<DependClause>,
    /// `map` clauses.
    pub maps: Vec<MapClause>,
    /// Kernel body accesses, in program order.
    pub body: Vec<Access>,
}

/// A node of the construct tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// `#pragma omp target ...` with a kernel body.
    Target(TargetNode),
    /// `#pragma omp target data map(...)` structured region.
    TargetData {
        /// Device owning the region's mappings.
        device: DeviceId,
        /// Region `map` clauses (entry and exit halves).
        maps: Vec<MapClause>,
        /// Constructs inside the region.
        body: Vec<Node>,
    },
    /// `#pragma omp target enter data map(...)`.
    EnterData {
        /// Target device.
        device: DeviceId,
        /// Entry `map` clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target exit data map(...)`.
    ExitData {
        /// Target device.
        device: DeviceId,
        /// Exit `map` clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target update to(...)` / `from(...)`. The transferred
    /// section is the present-table entry's (runtime semantics).
    Update {
        /// Device whose CV is the transfer endpoint.
        device: DeviceId,
        /// `update to` (OV → CV) vs `update from` (CV → OV).
        to_device: bool,
        /// Updated buffer.
        buf: BufId,
    },
    /// Host code: one ordered access.
    Host(Access),
    /// `#pragma omp taskwait`: joins all pending `nowait` constructs.
    Taskwait,
    /// Wait on one `nowait` target's completion handle.
    Wait {
        /// The awaited construct.
        target: TargetId,
    },
}

/// A named buffer and what is known about its initial (host) contents.
#[derive(Debug, Clone)]
pub struct BufferDecl {
    /// Runtime registration name.
    pub name: String,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Length in elements.
    pub len: u64,
    /// Host initialisation before the first construct: `None` when the
    /// program never initialises the OV, `(Must, sect)` for a definite
    /// initialising loop, `(May, sect)` when initialisation is
    /// data-dependent (e.g. read from an input file) — the case §VI-G
    /// says a static tool cannot decide.
    pub host_init: Option<(Certainty, Sect)>,
}

impl BufferDecl {
    /// Declared size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.elem_size * self.len
    }
}

/// An offload program: buffer declarations plus the construct tree.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (`DRACC_OMP_0NN` or a workload name).
    pub name: String,
    /// Buffer declarations; [`BufId`] indexes this.
    pub buffers: Vec<BufferDecl>,
    /// Top-level constructs, in program order.
    pub nodes: Vec<Node>,
}

impl Program {
    /// The declaration behind a [`BufId`].
    pub fn decl(&self, b: BufId) -> &BufferDecl {
        &self.buffers[b.0 as usize]
    }

    /// Look a buffer up by its registration name.
    pub fn buf_by_name(&self, name: &str) -> Option<BufId> {
        self.buffers.iter().position(|d| d.name == name).map(|i| BufId(i as u32))
    }

    /// Visit every node of the tree in program order.
    pub fn walk(&self, f: &mut impl FnMut(&Node)) {
        fn rec(nodes: &[Node], f: &mut impl FnMut(&Node)) {
            for n in nodes {
                f(n);
                if let Node::TargetData { body, .. } = n {
                    rec(body, f);
                }
            }
        }
        rec(&self.nodes, f);
    }

    /// The may-cover of a buffer: every byte interval the program may
    /// read (`want_write == false`) or write, as sorted, merged
    /// `[lo, hi)` byte ranges relative to the OV base. Host
    /// initialisation counts as a write. Sections are clamped to the
    /// declared extent (a benchmark that *maps* beyond the extent still
    /// only ever accesses real elements).
    pub fn may_cover(&self, name: &str, want_write: bool) -> Vec<(u64, u64)> {
        let Some(id) = self.buf_by_name(name) else { return Vec::new() };
        let decl = self.decl(id);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut add = |sect: Sect| {
            let (s, e) = sect.resolve(decl.len);
            let (s, e) = (s.min(decl.len), e.min(decl.len));
            if s < e {
                ranges.push((s * decl.elem_size, e * decl.elem_size));
            }
        };
        if want_write {
            if let Some((_, sect)) = decl.host_init {
                add(sect);
            }
        }
        self.walk(&mut |n| {
            let body: &[Access] = match n {
                Node::Target(t) => &t.body,
                Node::Host(a) => std::slice::from_ref(a),
                _ => &[],
            };
            for a in body {
                if a.buf == id && a.is_write == want_write {
                    let (s, e) = a.sect.resolve(decl.len);
                    let (s, e) = (s.min(decl.len), e.min(decl.len));
                    if s < e {
                        ranges.push((s * decl.elem_size, e * decl.elem_size));
                    }
                }
            }
        });
        normalize(ranges)
    }

    /// Whether `[byte_lo, byte_hi)` of `name` lies entirely inside the
    /// program's may-cover for reads/writes.
    pub fn covers(&self, name: &str, want_write: bool, byte_lo: u64, byte_hi: u64) -> bool {
        if byte_lo >= byte_hi {
            return true;
        }
        self.may_cover(name, want_write)
            .iter()
            .any(|&(lo, hi)| lo <= byte_lo && byte_hi <= hi)
    }
}

/// Sort and merge byte ranges (adjacent ranges coalesce).
fn normalize(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some((_, end)) if lo <= *end => *end = (*end).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Builder for [`Program`]s. Construct nesting (`target data` scopes) is
/// expressed with closures; see the crate tests for the idiom.
pub struct ProgramBuilder {
    name: String,
    buffers: Vec<BufferDecl>,
    frames: Vec<Vec<Node>>,
    next_target: u32,
}

impl ProgramBuilder {
    /// Start a program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            buffers: Vec::new(),
            frames: vec![Vec::new()],
            next_target: 0,
        }
    }

    fn push(&mut self, node: Node) {
        self.frames.last_mut().expect("frame stack never empty").push(node);
    }

    fn add_buffer(&mut self, name: &str, elem_size: u64, len: u64, host_init: Option<(Certainty, Sect)>) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(BufferDecl { name: name.to_string(), elem_size, len, host_init });
        id
    }

    /// Declare an uninitialised buffer (`rt.alloc`).
    pub fn buffer(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, None)
    }

    /// Declare a fully host-initialised buffer (`rt.alloc_with` /
    /// `alloc_init`).
    pub fn buffer_init(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, Some((Certainty::Must, Sect::Full)))
    }

    /// Declare a buffer whose host initialisation is data-dependent.
    pub fn buffer_init_may(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, Some((Certainty::May, Sect::Full)))
    }

    /// Open a `target` construct.
    pub fn target(&mut self) -> TargetBuilder<'_> {
        let id = TargetId(self.next_target);
        self.next_target += 1;
        TargetBuilder {
            p: self,
            node: TargetNode {
                id,
                device: DeviceId::ACCEL0,
                nowait: false,
                depends: Vec::new(),
                maps: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Open a `target data` region.
    pub fn data(&mut self) -> DataBuilder<'_> {
        DataBuilder { p: self, device: DeviceId::ACCEL0, maps: Vec::new() }
    }

    /// `target enter data`.
    pub fn enter_data(&mut self, maps: Vec<MapClause>) {
        self.push(Node::EnterData { device: DeviceId::ACCEL0, maps });
    }

    /// `target exit data`.
    pub fn exit_data(&mut self, maps: Vec<MapClause>) {
        self.push(Node::ExitData { device: DeviceId::ACCEL0, maps });
    }

    /// `target update to(buf)`.
    pub fn update_to(&mut self, buf: BufId) {
        self.push(Node::Update { device: DeviceId::ACCEL0, to_device: true, buf });
    }

    /// `target update from(buf)`.
    pub fn update_from(&mut self, buf: BufId) {
        self.push(Node::Update { device: DeviceId::ACCEL0, to_device: false, buf });
    }

    /// Host read of the whole buffer.
    pub fn host_read(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, false, Certainty::Must);
    }

    /// Host read of a section.
    pub fn host_read_sec(&mut self, buf: BufId, start: u64, len: u64) {
        self.host_access(buf, Sect::Elems { start, len }, false, Certainty::Must);
    }

    /// Host write of the whole buffer.
    pub fn host_write(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, true, Certainty::Must);
    }

    /// Host write of a section.
    pub fn host_write_sec(&mut self, buf: BufId, start: u64, len: u64) {
        self.host_access(buf, Sect::Elems { start, len }, true, Certainty::Must);
    }

    /// Data-dependent host write (may or may not happen).
    pub fn host_may_write(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, true, Certainty::May);
    }

    fn host_access(&mut self, buf: BufId, sect: Sect, is_write: bool, certainty: Certainty) {
        self.push(Node::Host(Access { buf, sect, is_write, certainty }));
    }

    /// `taskwait`.
    pub fn taskwait(&mut self) {
        self.push(Node::Taskwait);
    }

    /// Wait on a `nowait` target's handle.
    pub fn wait(&mut self, target: TargetId) {
        self.push(Node::Wait { target });
    }

    /// Finish; panics on malformed nesting (unclosed scopes).
    pub fn build(self) -> Program {
        assert_eq!(self.frames.len(), 1, "unclosed target data scope");
        let mut frames = self.frames;
        Program { name: self.name, buffers: self.buffers, nodes: frames.pop().unwrap() }
    }
}

/// Map-clause constructors shared by the construct builders.
macro_rules! map_methods {
    () => {
        /// `map(to: buf)`.
        pub fn map_to(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::To, Sect::Full)
        }
        /// `map(from: buf)`.
        pub fn map_from(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::From, Sect::Full)
        }
        /// `map(tofrom: buf)`.
        pub fn map_tofrom(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::ToFrom, Sect::Full)
        }
        /// `map(alloc: buf)`.
        pub fn map_alloc(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::Alloc, Sect::Full)
        }
        /// `map(to: buf[start:len])`.
        pub fn map_to_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::To, Sect::Elems { start, len })
        }
        /// `map(from: buf[start:len])`.
        pub fn map_from_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::From, Sect::Elems { start, len })
        }
        /// `map(tofrom: buf[start:len])`.
        pub fn map_tofrom_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::ToFrom, Sect::Elems { start, len })
        }
        /// `map(alloc: buf[start:len])`.
        pub fn map_alloc_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::Alloc, Sect::Elems { start, len })
        }
    };
}

/// Builds one `target` construct; finish with [`TargetBuilder::done`].
pub struct TargetBuilder<'a> {
    p: &'a mut ProgramBuilder,
    node: TargetNode,
}

impl TargetBuilder<'_> {
    fn add_map(mut self, buf: BufId, map_type: MapType, sect: Sect) -> Self {
        self.node.maps.push(MapClause { buf, map_type, sect });
        self
    }

    map_methods!();

    /// Execute on a specific device (default `ACCEL0`).
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.node.device = device;
        self
    }

    /// Add the `nowait` clause.
    pub fn nowait(mut self) -> Self {
        self.node.nowait = true;
        self
    }

    /// `depend(in: buf)`.
    pub fn depend_read(mut self, buf: BufId) -> Self {
        self.node.depends.push(DependClause { buf, is_write: false });
        self
    }

    /// `depend(out: buf)` / `depend(inout: buf)`.
    pub fn depend_write(mut self, buf: BufId) -> Self {
        self.node.depends.push(DependClause { buf, is_write: true });
        self
    }

    fn access(mut self, buf: BufId, sect: Sect, is_write: bool, certainty: Certainty) -> Self {
        self.node.body.push(Access { buf, sect, is_write, certainty });
        self
    }

    /// Kernel reads the whole buffer on every execution.
    pub fn reads(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, false, Certainty::Must)
    }

    /// Kernel must-reads a section.
    pub fn reads_sec(self, buf: BufId, start: u64, len: u64) -> Self {
        self.access(buf, Sect::Elems { start, len }, false, Certainty::Must)
    }

    /// Kernel may-reads the whole buffer (data-dependent indices).
    pub fn may_reads(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, false, Certainty::May)
    }

    /// Kernel writes the whole buffer on every execution.
    pub fn writes(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, true, Certainty::Must)
    }

    /// Kernel must-writes a section.
    pub fn writes_sec(self, buf: BufId, start: u64, len: u64) -> Self {
        self.access(buf, Sect::Elems { start, len }, true, Certainty::Must)
    }

    /// Kernel may-writes the whole buffer (data-dependent indices).
    pub fn may_writes(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, true, Certainty::May)
    }

    /// Close the construct, returning its id (for [`ProgramBuilder::wait`]).
    pub fn done(self) -> TargetId {
        let id = self.node.id;
        let node = Node::Target(self.node);
        self.p.push(node);
        id
    }
}

/// Builds one `target data` region; finish with [`DataBuilder::scope`].
pub struct DataBuilder<'a> {
    p: &'a mut ProgramBuilder,
    device: DeviceId,
    maps: Vec<MapClause>,
}

impl DataBuilder<'_> {
    fn add_map(mut self, buf: BufId, map_type: MapType, sect: Sect) -> Self {
        self.maps.push(MapClause { buf, map_type, sect });
        self
    }

    map_methods!();

    /// Run the region body, then emit the region node.
    pub fn scope(self, f: impl FnOnce(&mut ProgramBuilder)) {
        let DataBuilder { p, device, maps } = self;
        p.frames.push(Vec::new());
        f(p);
        let body = p.frames.pop().expect("scope frame");
        p.push(Node::TargetData { device, maps, body });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = ProgramBuilder::new("sample");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.data().map_to(a).map_from(out).scope(|p| {
            p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        });
        p.host_read_sec(out, 0, 1);
        p.build()
    }

    #[test]
    fn builder_produces_the_expected_tree() {
        let prog = sample();
        assert_eq!(prog.buffers.len(), 2);
        assert_eq!(prog.nodes.len(), 2);
        let Node::TargetData { body, maps, .. } = &prog.nodes[0] else {
            panic!("expected a data region")
        };
        assert_eq!(maps.len(), 2);
        assert_eq!(body.len(), 1);
        let Node::Target(t) = &body[0] else { panic!("expected a target") };
        assert_eq!(t.body.len(), 2);
        assert!(!t.body[0].is_write && t.body[1].is_write);
    }

    #[test]
    fn may_cover_includes_host_init_and_merges() {
        let prog = sample();
        // `a` is host-initialised (write) and kernel-read.
        assert_eq!(prog.may_cover("a", true), vec![(0, 128)]);
        assert_eq!(prog.may_cover("a", false), vec![(0, 128)]);
        // `out` is kernel-written and host-read only in [0, 8).
        assert_eq!(prog.may_cover("out", false), vec![(0, 8)]);
        assert!(prog.covers("out", true, 0, 128));
        assert!(!prog.covers("out", false, 8, 16));
    }

    #[test]
    fn oversized_sections_clamp_in_covers() {
        let mut p = ProgramBuilder::new("bo");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to_sec(a, 0, 24).reads(a).done();
        let prog = p.build();
        // The cover never exceeds the declared extent.
        assert_eq!(prog.may_cover("a", false), vec![(0, 128)]);
    }

    #[test]
    fn sect_resolution() {
        assert_eq!(Sect::Full.resolve(10), (0, 10));
        assert_eq!(Sect::Elems { start: 4, len: 10 }.resolve(10), (4, 14));
    }

    #[test]
    fn walk_descends_into_data_regions() {
        let prog = sample();
        let mut targets = 0;
        prog.walk(&mut |n| {
            if matches!(n, Node::Target(_)) {
                targets += 1;
            }
        });
        assert_eq!(targets, 1);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_scope_panics() {
        let mut p = ProgramBuilder::new("bad");
        p.frames.push(Vec::new());
        p.build();
    }
}
