//! # arbalest-ir
//!
//! A small offload-program IR: the structured construct tree a static
//! analyzer needs and the runtime-constructed benchmarks do not have
//! (DESIGN.md §9's historical gap, closed by `arbalest lint`).
//!
//! A [`Program`] declares named buffers ([`BufferDecl`]) and a tree of
//! [`Node`]s mirroring the OpenMP device constructs the runtime offers:
//! `target` (with maps, `nowait`, `depend`), `target data` regions,
//! unstructured `enter`/`exit data`, `target update`, host code blocks,
//! and `taskwait`. The leaves are **may/must read/write sets** over
//! buffers and element-granular array sections ([`Access`]): a `Must`
//! access happens on every execution of the program, a `May` access is
//! data-dependent (conditional writes, unknown gather indices, inputs
//! whose initialisation cannot be decided statically).
//!
//! Beyond straight-line code, programs carry **control flow**
//! ([`Node::If`] regions joined by the analyzer, [`Node::Loop`] regions
//! widened to a fixpoint) and **symbolic bounds**: any section bound or
//! buffer length can be an affine [`Expr`] over declared program
//! parameters ([`ProgramBuilder::param`]), so one parametric model
//! covers every problem size. [`Program::concretize`] binds the
//! parameters, unrolls the loops, and resolves the branches, yielding a
//! plain straight-line program the [`interp`] module can execute on the
//! real offload runtime — the bridge the differential fuzzer
//! (`arbalest fuzz-lint`) is built on.
//!
//! Programs are hand-authored through [`ProgramBuilder`] and validated
//! against the runtime two ways (both enforced in `tests/`):
//!
//! * buffer declarations must match the runtime's registrations
//!   (name, element size, length), and
//! * replaying a recorded trace must touch no buffer/section outside
//!   the IR's may-sets — the IR is a *sound abstraction* of the
//!   program's behaviour, which is what makes `Must` diagnostics from
//!   the static checker trustworthy.

#![warn(missing_docs)]

pub mod expr;
pub mod generate;
pub mod interp;
pub mod patch;
pub mod rng;

use arbalest_offload::addr::DeviceId;
use arbalest_offload::mapping::MapType;
use arbalest_offload::sections;
use std::collections::BTreeMap;
use std::fmt;

pub use expr::{Expr, ParamDecl, ParamId, Trip, Var};

/// Index of a buffer declaration within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

/// Identifier of a `target` construct, for [`Node::Wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetId(pub u32);

/// An array section in element units. `Full` resolves to the whole
/// declared extent; `Elems` may deliberately exceed it (that is exactly
/// the wrong-array-section bug class DRACC seeds); `Sym` carries affine
/// symbolic bounds resolved by the static checker's interval arithmetic
/// or by [`Program::concretize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sect {
    /// The buffer's whole declared extent.
    Full,
    /// `buf[start : start+len]` in elements.
    Elems {
        /// First element.
        start: u64,
        /// Element count.
        len: u64,
    },
    /// `buf[start : start+len]` with affine symbolic bounds.
    Sym {
        /// First element.
        start: Expr,
        /// Element count.
        len: Expr,
    },
}

impl Sect {
    /// Resolve to a concrete element interval `[start, end)` against a
    /// declared length. `Full` is clamped to the declaration; `Elems` is
    /// not (the sum saturates instead of wrapping near `u64::MAX`); a
    /// symbolic section conservatively resolves to the whole extent —
    /// use [`Sect::resolve_sym`] or concretize first for precision.
    pub fn resolve(&self, decl_len: u64) -> (u64, u64) {
        match self {
            Sect::Full => (0, decl_len),
            Sect::Elems { start, len } => (*start, start.saturating_add(*len)),
            Sect::Sym { .. } => (0, decl_len),
        }
    }

    /// Resolve to a symbolic element interval `[start, end)` against a
    /// symbolic extent.
    pub fn resolve_sym(&self, extent: &Expr) -> (Expr, Expr) {
        match self {
            Sect::Full => (Expr::ZERO, extent.clone()),
            Sect::Elems { start, len } => {
                (Expr::lit(*start), Expr::lit(*start).add(&Expr::lit(*len)))
            }
            Sect::Sym { start, len } => (start.clone(), start.add(len)),
        }
    }

    /// Whether the section carries symbolic bounds.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Sect::Sym { .. })
    }

    /// Whether the section's bounds mention a loop induction variable.
    pub fn uses_iv(&self) -> bool {
        match self {
            Sect::Sym { start, len } => start.uses_iv() || len.uses_iv(),
            _ => false,
        }
    }
}

/// Whether a fact holds on every execution or only on some.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// Holds on every execution.
    Must,
    /// Data-dependent: holds on some executions.
    May,
}

/// One read or write of a buffer section. Within a kernel or host block
/// the accesses are ordered (program order), so "write then read" scratch
/// patterns analyze correctly.
#[derive(Debug, Clone)]
pub struct Access {
    /// Accessed buffer.
    pub buf: BufId,
    /// Accessed section (element units).
    pub sect: Sect,
    /// Write (`true`) or read.
    pub is_write: bool,
    /// `Must` if the access happens on every execution.
    pub certainty: Certainty,
}

/// One `map` clause.
#[derive(Debug, Clone)]
pub struct MapClause {
    /// Mapped buffer.
    pub buf: BufId,
    /// OpenMP map-type (Table I semantics).
    pub map_type: MapType,
    /// Mapped section (element units).
    pub sect: Sect,
}

/// One `depend` clause on a `target ... nowait` construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DependClause {
    /// The dependence object (a buffer stands in for the C pointer).
    pub buf: BufId,
    /// `depend(out/inout)` vs `depend(in)`.
    pub is_write: bool,
}

/// A `target` construct.
#[derive(Debug, Clone)]
pub struct TargetNode {
    /// Identity, referenced by [`Node::Wait`].
    pub id: TargetId,
    /// Executing device.
    pub device: DeviceId,
    /// `nowait` clause present.
    pub nowait: bool,
    /// `depend` clauses.
    pub depends: Vec<DependClause>,
    /// `map` clauses.
    pub maps: Vec<MapClause>,
    /// Kernel body accesses, in program order.
    pub body: Vec<Access>,
}

/// A node of the construct tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// `#pragma omp target ...` with a kernel body.
    Target(TargetNode),
    /// `#pragma omp target data map(...)` structured region.
    TargetData {
        /// Device owning the region's mappings.
        device: DeviceId,
        /// Region `map` clauses (entry and exit halves).
        maps: Vec<MapClause>,
        /// Constructs inside the region.
        body: Vec<Node>,
    },
    /// `#pragma omp target enter data map(...)`.
    EnterData {
        /// Target device.
        device: DeviceId,
        /// Entry `map` clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target exit data map(...)`.
    ExitData {
        /// Target device.
        device: DeviceId,
        /// Exit `map` clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target update to(...)` / `from(...)`. The transferred
    /// section is the present-table entry's (runtime semantics).
    Update {
        /// Device whose CV is the transfer endpoint.
        device: DeviceId,
        /// `update to` (OV → CV) vs `update from` (CV → OV).
        to_device: bool,
        /// Updated buffer.
        buf: BufId,
    },
    /// Host code: one ordered access.
    Host(Access),
    /// `#pragma omp taskwait`: joins all pending `nowait` constructs.
    Taskwait,
    /// Wait on one `nowait` target's completion handle.
    Wait {
        /// The awaited construct.
        target: TargetId,
    },
    /// A two-armed branch. The analyzer analyses both arms from the same
    /// entry state and joins them at the merge point (demoting facts that
    /// differ to `May`); `concretize` resolves the branch from the
    /// binding's choice seed.
    If {
        /// `true` when the condition is data-dependent (unknowable even
        /// with all parameters bound); `false` when it is determined by
        /// program parameters. Either way the static analyzer must join
        /// both arms.
        may_taken: bool,
        /// Constructs of the taken arm.
        then_: Vec<Node>,
        /// Constructs of the not-taken arm (often empty).
        else_: Vec<Node>,
    },
    /// A counted loop: the body executes `trip` times with the innermost
    /// induction variable ([`Expr::iv`]) running `0 .. trip`. The
    /// analyzer widens the body to a fixpoint; `concretize` unrolls it.
    Loop {
        /// Trip count (affine in parameters and any outer iv).
        trip: Trip,
        /// Loop body constructs.
        body: Vec<Node>,
    },
}

/// A named buffer and what is known about its initial (host) contents.
#[derive(Debug, Clone)]
pub struct BufferDecl {
    /// Runtime registration name.
    pub name: String,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Length in elements. For a symbolically-sized buffer this holds the
    /// smallest admissible length (the true length is `sym_len`);
    /// [`Program::concretize`] replaces it with the bound value.
    pub len: u64,
    /// Symbolic length, when the buffer is parameter-sized.
    pub sym_len: Option<Expr>,
    /// Host initialisation before the first construct: `None` when the
    /// program never initialises the OV, `(Must, sect)` for a definite
    /// initialising loop, `(May, sect)` when initialisation is
    /// data-dependent (e.g. read from an input file) — the case §VI-G
    /// says a static tool cannot decide.
    pub host_init: Option<(Certainty, Sect)>,
}

impl BufferDecl {
    /// Declared size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.elem_size * self.len
    }

    /// The length as a symbolic expression (exact even when the buffer
    /// is parameter-sized).
    pub fn extent(&self) -> Expr {
        self.sym_len.clone().unwrap_or_else(|| Expr::lit(self.len))
    }
}

/// A typed IR construction/evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A `target data` (or `if`/`loop`) scope was left open at `build`.
    UnclosedScope,
    /// A concrete section's `start + len` overflows `u64` — the interval
    /// cannot be represented, so the program is rejected instead of
    /// silently wrapping.
    SectionOutOfRange {
        /// Offending buffer name.
        buffer: String,
        /// Section start (elements).
        start: u64,
        /// Section length (elements).
        len: u64,
    },
    /// An expression references a parameter that is not declared (or not
    /// bound, during concretization).
    UnboundParam {
        /// Parameter name (or `p<idx>` when undeclared).
        name: String,
    },
    /// An expression uses the loop induction variable outside any loop.
    IvOutsideLoop {
        /// Where the iv appeared.
        context: String,
    },
    /// A binding value lies outside the parameter's declared range.
    OutOfRangeBinding {
        /// Parameter name.
        name: String,
        /// The offending value.
        value: u64,
    },
    /// A symbolic bound evaluates negative or beyond `u64`.
    EvalOutOfRange {
        /// Human-readable description of the offending expression.
        detail: String,
    },
    /// A `wait` references a target that was never emitted before it.
    DanglingWait,
    /// A loop trip count exceeds the concretization cap.
    TripTooLarge {
        /// The evaluated trip count.
        trip: u64,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnclosedScope => write!(f, "unclosed target data scope"),
            IrError::SectionOutOfRange { buffer, start, len } => {
                write!(f, "section [{start}, +{len}) of '{buffer}' overflows the element space")
            }
            IrError::UnboundParam { name } => write!(f, "parameter '{name}' is not bound"),
            IrError::IvOutsideLoop { context } => {
                write!(f, "induction variable used outside a loop ({context})")
            }
            IrError::OutOfRangeBinding { name, value } => {
                write!(f, "binding {name}={value} lies outside the declared parameter range")
            }
            IrError::EvalOutOfRange { detail } => {
                write!(f, "symbolic bound evaluates out of range: {detail}")
            }
            IrError::DanglingWait => write!(f, "wait on a target that was never emitted"),
            IrError::TripTooLarge { trip } => {
                write!(f, "loop trip count {trip} exceeds the concretization cap")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// A valuation of program parameters plus a seed for resolving
/// data-dependent choices (`If` arms, `May` accesses) during
/// concretization and interpretation.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    values: Vec<Option<u64>>,
    /// Seed driving branch/may-access resolution.
    pub choice_seed: u64,
}

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Binding::default()
    }

    /// Bind a parameter (builder style).
    #[must_use]
    pub fn set(mut self, p: ParamId, v: u64) -> Self {
        let idx = p.0 as usize;
        if self.values.len() <= idx {
            self.values.resize(idx + 1, None);
        }
        self.values[idx] = Some(v);
        self
    }

    /// Set the choice seed (builder style).
    #[must_use]
    pub fn with_choices(mut self, seed: u64) -> Self {
        self.choice_seed = seed;
        self
    }

    /// The bound value of a parameter, if any.
    pub fn get(&self, p: ParamId) -> Option<u64> {
        self.values.get(p.0 as usize).copied().flatten()
    }
}

/// An offload program: parameters, buffer declarations, and the
/// construct tree.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (`DRACC_OMP_0NN` or a workload name).
    pub name: String,
    /// Declared parameters; [`ParamId`] indexes this.
    pub params: Vec<ParamDecl>,
    /// Buffer declarations; [`BufId`] indexes this.
    pub buffers: Vec<BufferDecl>,
    /// Top-level constructs, in program order.
    pub nodes: Vec<Node>,
}

/// Concretization refuses to unroll loops past this many iterations.
const MAX_TRIP: u64 = 4096;

impl Program {
    /// The declaration behind a [`BufId`].
    pub fn decl(&self, b: BufId) -> &BufferDecl {
        &self.buffers[b.0 as usize]
    }

    /// Look a buffer up by its registration name.
    pub fn buf_by_name(&self, name: &str) -> Option<BufId> {
        self.buffers.iter().position(|d| d.name == name).map(|i| BufId(i as u32))
    }

    /// Visit every node of the tree in program order, descending into
    /// `target data` regions, branch arms, and loop bodies.
    pub fn walk(&self, f: &mut impl FnMut(&Node)) {
        fn rec(nodes: &[Node], f: &mut impl FnMut(&Node)) {
            for n in nodes {
                f(n);
                match n {
                    Node::TargetData { body, .. } | Node::Loop { body, .. } => rec(body, f),
                    Node::If { then_, else_, .. } => {
                        rec(then_, f);
                        rec(else_, f);
                    }
                    _ => {}
                }
            }
        }
        rec(&self.nodes, f);
    }

    /// Whether the program is fully concrete: no parameters, no control
    /// flow, no symbolic sections or lengths. Only concrete programs can
    /// be interpreted directly.
    pub fn is_concrete(&self) -> bool {
        if !self.params.is_empty() || self.buffers.iter().any(|d| d.sym_len.is_some()) {
            return false;
        }
        if self
            .buffers
            .iter()
            .any(|d| matches!(&d.host_init, Some((_, s)) if s.is_symbolic()))
        {
            return false;
        }
        let mut concrete = true;
        self.walk(&mut |n| match n {
            Node::If { .. } | Node::Loop { .. } => concrete = false,
            Node::Target(t) => {
                concrete &= t.maps.iter().all(|m| !m.sect.is_symbolic())
                    && t.body.iter().all(|a| !a.sect.is_symbolic());
            }
            Node::TargetData { maps, .. } | Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => {
                concrete &= maps.iter().all(|m| !m.sect.is_symbolic());
            }
            Node::Host(a) => concrete &= !a.sect.is_symbolic(),
            _ => {}
        });
        concrete
    }

    /// The may-cover of a buffer: every byte interval the program may
    /// read (`want_write == false`) or write, as sorted, merged
    /// `[lo, hi)` byte ranges relative to the OV base. Host
    /// initialisation counts as a write. Sections are clamped to the
    /// declared extent (a benchmark that *maps* beyond the extent still
    /// only ever accesses real elements). Symbolic sections widen to the
    /// whole extent — call this on concrete programs for precision.
    pub fn may_cover(&self, name: &str, want_write: bool) -> Vec<(u64, u64)> {
        let Some(id) = self.buf_by_name(name) else { return Vec::new() };
        let decl = self.decl(id);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut add = |sect: &Sect| {
            let (s, e) = sect.resolve(decl.len);
            let (s, e) = (s.min(decl.len), e.min(decl.len));
            if s < e {
                ranges.push((s * decl.elem_size, e * decl.elem_size));
            }
        };
        if want_write {
            if let Some((_, sect)) = &decl.host_init {
                add(sect);
            }
        }
        self.walk(&mut |n| {
            let body: &[Access] = match n {
                Node::Target(t) => &t.body,
                Node::Host(a) => std::slice::from_ref(a),
                _ => &[],
            };
            for a in body {
                if a.buf == id && a.is_write == want_write {
                    add(&a.sect);
                }
            }
        });
        sections::normalize(&mut ranges);
        ranges
    }

    /// Whether `[byte_lo, byte_hi)` of `name` lies entirely inside the
    /// program's may-cover for reads/writes.
    pub fn covers(&self, name: &str, want_write: bool, byte_lo: u64, byte_hi: u64) -> bool {
        sections::covered_by(&self.may_cover(name, want_write), byte_lo, byte_hi)
    }

    /// Bind every parameter, unroll every loop, and resolve every branch,
    /// yielding a fully concrete program (same name, renumbered target
    /// ids). Branch arms and nothing else consume the binding's choice
    /// seed, so equal seeds resolve equal control flow.
    pub fn concretize(&self, binding: &Binding) -> Result<Program, IrError> {
        for (i, d) in self.params.iter().enumerate() {
            let v = binding
                .get(ParamId(i as u32))
                .ok_or_else(|| IrError::UnboundParam { name: d.name.clone() })?;
            if v < d.min || d.max.is_some_and(|m| v > m) {
                return Err(IrError::OutOfRangeBinding { name: d.name.clone(), value: v });
            }
        }
        let mut cz = Concretizer {
            p: self,
            b: binding,
            rng: rng::SplitMix64::new(binding.choice_seed),
            iv: Vec::new(),
            idmap: BTreeMap::new(),
            next_target: 0,
        };
        let mut buffers = Vec::with_capacity(self.buffers.len());
        for d in &self.buffers {
            let len = match &d.sym_len {
                Some(e) => cz.eval(e, "buffer length")?,
                None => d.len,
            };
            let host_init = match &d.host_init {
                Some((c, s)) => Some((*c, cz.sect(s, &d.name)?)),
                None => None,
            };
            buffers.push(BufferDecl {
                name: d.name.clone(),
                elem_size: d.elem_size,
                len,
                sym_len: None,
                host_init,
            });
        }
        let mut nodes = Vec::new();
        cz.nodes(&self.nodes, &mut nodes)?;
        Ok(Program { name: self.name.clone(), params: Vec::new(), buffers, nodes })
    }
}

/// Recursive state of [`Program::concretize`].
struct Concretizer<'a> {
    p: &'a Program,
    b: &'a Binding,
    rng: rng::SplitMix64,
    iv: Vec<u64>,
    idmap: BTreeMap<u32, u32>,
    next_target: u32,
}

impl Concretizer<'_> {
    fn eval(&self, e: &Expr, what: &str) -> Result<u64, IrError> {
        if e.uses_iv() && self.iv.is_empty() {
            return Err(IrError::IvOutsideLoop { context: what.to_string() });
        }
        let v = e.eval(&|p| self.b.get(p), self.iv.last().copied()).ok_or_else(|| {
            let name = e
                .params_used()
                .find(|p| self.b.get(*p).is_none())
                .and_then(|p| self.p.params.get(p.0 as usize))
                .map(|d| d.name.clone())
                .unwrap_or_else(|| "?".to_string());
            IrError::UnboundParam { name }
        })?;
        u64::try_from(v)
            .map_err(|_| IrError::EvalOutOfRange { detail: format!("{what}: {e} = {v}") })
    }

    fn sect(&self, s: &Sect, buffer: &str) -> Result<Sect, IrError> {
        match s {
            Sect::Sym { start, len } => {
                let start = self.eval(start, buffer)?;
                let len = self.eval(len, buffer)?;
                if start.checked_add(len).is_none() {
                    return Err(IrError::SectionOutOfRange { buffer: buffer.into(), start, len });
                }
                Ok(Sect::Elems { start, len })
            }
            other => Ok(other.clone()),
        }
    }

    fn maps(&self, maps: &[MapClause]) -> Result<Vec<MapClause>, IrError> {
        maps.iter()
            .map(|m| {
                Ok(MapClause {
                    buf: m.buf,
                    map_type: m.map_type,
                    sect: self.sect(&m.sect, &self.p.decl(m.buf).name)?,
                })
            })
            .collect()
    }

    fn accesses(&self, body: &[Access]) -> Result<Vec<Access>, IrError> {
        body.iter()
            .map(|a| {
                Ok(Access {
                    buf: a.buf,
                    sect: self.sect(&a.sect, &self.p.decl(a.buf).name)?,
                    is_write: a.is_write,
                    certainty: a.certainty,
                })
            })
            .collect()
    }

    fn nodes(&mut self, nodes: &[Node], out: &mut Vec<Node>) -> Result<(), IrError> {
        for n in nodes {
            match n {
                Node::Target(t) => {
                    let id = TargetId(self.next_target);
                    self.next_target += 1;
                    self.idmap.insert(t.id.0, id.0);
                    out.push(Node::Target(TargetNode {
                        id,
                        device: t.device,
                        nowait: t.nowait,
                        depends: t.depends.clone(),
                        maps: self.maps(&t.maps)?,
                        body: self.accesses(&t.body)?,
                    }));
                }
                Node::TargetData { device, maps, body } => {
                    let maps = self.maps(maps)?;
                    let mut inner = Vec::new();
                    self.nodes(body, &mut inner)?;
                    out.push(Node::TargetData { device: *device, maps, body: inner });
                }
                Node::EnterData { device, maps } => {
                    out.push(Node::EnterData { device: *device, maps: self.maps(maps)? });
                }
                Node::ExitData { device, maps } => {
                    out.push(Node::ExitData { device: *device, maps: self.maps(maps)? });
                }
                Node::Update { device, to_device, buf } => {
                    out.push(Node::Update { device: *device, to_device: *to_device, buf: *buf });
                }
                Node::Host(a) => {
                    out.push(Node::Host(self.accesses(std::slice::from_ref(a))?.pop().unwrap()));
                }
                Node::Taskwait => out.push(Node::Taskwait),
                Node::Wait { target } => {
                    let id = *self.idmap.get(&target.0).ok_or(IrError::DanglingWait)?;
                    out.push(Node::Wait { target: TargetId(id) });
                }
                Node::If { then_, else_, .. } => {
                    let take_then = self.rng.next_u64() & 1 == 0;
                    let arm = if take_then { then_ } else { else_ };
                    self.nodes(arm, out)?;
                }
                Node::Loop { trip, body } => {
                    let n = self.eval(&trip.0, "trip count")?;
                    if n > MAX_TRIP {
                        return Err(IrError::TripTooLarge { trip: n });
                    }
                    for i in 0..n {
                        self.iv.push(i);
                        let r = self.nodes(body, out);
                        self.iv.pop();
                        r?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Program`]s. Construct nesting (`target data` scopes,
/// loops, branches) is expressed with closures; see the crate tests for
/// the idiom.
pub struct ProgramBuilder {
    name: String,
    params: Vec<ParamDecl>,
    buffers: Vec<BufferDecl>,
    frames: Vec<Vec<Node>>,
    next_target: u32,
}

impl ProgramBuilder {
    /// Start a program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            params: Vec::new(),
            buffers: Vec::new(),
            frames: vec![Vec::new()],
            next_target: 0,
        }
    }

    /// Declare a program parameter with its admissible range
    /// (`max == None` for unbounded above).
    pub fn param(&mut self, name: &str, min: u64, max: Option<u64>) -> ParamId {
        let id = ParamId(self.params.len() as u32);
        self.params.push(ParamDecl { name: name.to_string(), min, max });
        id
    }

    fn push(&mut self, node: Node) {
        self.frames.last_mut().expect("frame stack never empty").push(node);
    }

    fn add_buffer(
        &mut self,
        name: &str,
        elem_size: u64,
        len: u64,
        sym_len: Option<Expr>,
        host_init: Option<(Certainty, Sect)>,
    ) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers
            .push(BufferDecl { name: name.to_string(), elem_size, len, sym_len, host_init });
        id
    }

    /// Declare an uninitialised buffer (`rt.alloc`).
    pub fn buffer(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, None, None)
    }

    /// Declare a fully host-initialised buffer (`rt.alloc_with` /
    /// `alloc_init`).
    pub fn buffer_init(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, None, Some((Certainty::Must, Sect::Full)))
    }

    /// Declare a buffer whose host initialisation is data-dependent.
    pub fn buffer_init_may(&mut self, name: &str, elem_size: u64, len: u64) -> BufId {
        self.add_buffer(name, elem_size, len, None, Some((Certainty::May, Sect::Full)))
    }

    /// Declare an uninitialised buffer with a symbolic length.
    pub fn buffer_sym(&mut self, name: &str, elem_size: u64, len: Expr) -> BufId {
        let min = len.range(&self.params, None).0.unwrap_or(0).max(0) as u64;
        self.add_buffer(name, elem_size, min, Some(len), None)
    }

    /// Declare a fully host-initialised buffer with a symbolic length.
    pub fn buffer_init_sym(&mut self, name: &str, elem_size: u64, len: Expr) -> BufId {
        let min = len.range(&self.params, None).0.unwrap_or(0).max(0) as u64;
        self.add_buffer(name, elem_size, min, Some(len), Some((Certainty::Must, Sect::Full)))
    }

    /// Open a `target` construct.
    pub fn target(&mut self) -> TargetBuilder<'_> {
        let id = TargetId(self.next_target);
        self.next_target += 1;
        TargetBuilder {
            p: self,
            node: TargetNode {
                id,
                device: DeviceId::ACCEL0,
                nowait: false,
                depends: Vec::new(),
                maps: Vec::new(),
                body: Vec::new(),
            },
        }
    }

    /// Open a `target data` region.
    pub fn data(&mut self) -> DataBuilder<'_> {
        DataBuilder { p: self, device: DeviceId::ACCEL0, maps: Vec::new() }
    }

    /// `target enter data`.
    pub fn enter_data(&mut self, maps: Vec<MapClause>) {
        self.push(Node::EnterData { device: DeviceId::ACCEL0, maps });
    }

    /// `target exit data`.
    pub fn exit_data(&mut self, maps: Vec<MapClause>) {
        self.push(Node::ExitData { device: DeviceId::ACCEL0, maps });
    }

    /// `target update to(buf)`.
    pub fn update_to(&mut self, buf: BufId) {
        self.push(Node::Update { device: DeviceId::ACCEL0, to_device: true, buf });
    }

    /// `target update from(buf)`.
    pub fn update_from(&mut self, buf: BufId) {
        self.push(Node::Update { device: DeviceId::ACCEL0, to_device: false, buf });
    }

    /// Host read of the whole buffer.
    pub fn host_read(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, false, Certainty::Must);
    }

    /// Host read of a section.
    pub fn host_read_sec(&mut self, buf: BufId, start: u64, len: u64) {
        self.host_access(buf, Sect::Elems { start, len }, false, Certainty::Must);
    }

    /// Host write of the whole buffer.
    pub fn host_write(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, true, Certainty::Must);
    }

    /// Host write of a section.
    pub fn host_write_sec(&mut self, buf: BufId, start: u64, len: u64) {
        self.host_access(buf, Sect::Elems { start, len }, true, Certainty::Must);
    }

    /// Data-dependent host write (may or may not happen).
    pub fn host_may_write(&mut self, buf: BufId) {
        self.host_access(buf, Sect::Full, true, Certainty::May);
    }

    fn host_access(&mut self, buf: BufId, sect: Sect, is_write: bool, certainty: Certainty) {
        self.push(Node::Host(Access { buf, sect, is_write, certainty }));
    }

    /// `taskwait`.
    pub fn taskwait(&mut self) {
        self.push(Node::Taskwait);
    }

    /// Wait on a `nowait` target's handle.
    pub fn wait(&mut self, target: TargetId) {
        self.push(Node::Wait { target });
    }

    /// A counted loop region: the closure builds the body, which
    /// executes `trip` times with [`Expr::iv`] running `0 .. trip`.
    pub fn loop_(&mut self, trip: Trip, f: impl FnOnce(&mut ProgramBuilder)) {
        self.frames.push(Vec::new());
        f(self);
        let body = self.frames.pop().expect("loop frame");
        self.push(Node::Loop { trip, body });
    }

    /// A counted loop with a concrete trip count.
    pub fn loop_n(&mut self, n: u64, f: impl FnOnce(&mut ProgramBuilder)) {
        self.loop_(Trip::lit(n), f);
    }

    /// A two-armed branch region; see [`Node::If`].
    pub fn if_(
        &mut self,
        may_taken: bool,
        then_f: impl FnOnce(&mut ProgramBuilder),
        else_f: impl FnOnce(&mut ProgramBuilder),
    ) {
        self.frames.push(Vec::new());
        then_f(self);
        let then_ = self.frames.pop().expect("if frame");
        self.frames.push(Vec::new());
        else_f(self);
        let else_ = self.frames.pop().expect("if frame");
        self.push(Node::If { may_taken, then_, else_ });
    }

    /// Finish; panics on a malformed program (unclosed scopes, sections
    /// whose `start + len` overflows, iv use outside a loop). Use
    /// [`ProgramBuilder::try_build`] for a typed error.
    pub fn build(self) -> Program {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finish, surfacing malformations as a typed [`IrError`].
    pub fn try_build(self) -> Result<Program, IrError> {
        if self.frames.len() != 1 {
            return Err(IrError::UnclosedScope);
        }
        let mut frames = self.frames;
        let p = Program {
            name: self.name,
            params: self.params,
            buffers: self.buffers,
            nodes: frames.pop().unwrap(),
        };
        validate(&p)?;
        Ok(p)
    }
}

/// Structural validation behind [`ProgramBuilder::try_build`].
fn validate(p: &Program) -> Result<(), IrError> {
    fn check_expr(e: &Expr, p: &Program, in_loop: bool, what: &str) -> Result<(), IrError> {
        if e.uses_iv() && !in_loop {
            return Err(IrError::IvOutsideLoop { context: what.to_string() });
        }
        for pid in e.params_used() {
            if pid.0 as usize >= p.params.len() {
                return Err(IrError::UnboundParam { name: format!("p{}", pid.0) });
            }
        }
        Ok(())
    }
    fn check_sect(s: &Sect, buffer: &str, p: &Program, in_loop: bool) -> Result<(), IrError> {
        match s {
            Sect::Full => Ok(()),
            Sect::Elems { start, len } => match start.checked_add(*len) {
                Some(_) => Ok(()),
                None => Err(IrError::SectionOutOfRange {
                    buffer: buffer.to_string(),
                    start: *start,
                    len: *len,
                }),
            },
            Sect::Sym { start, len } => {
                check_expr(start, p, in_loop, buffer)?;
                check_expr(len, p, in_loop, buffer)
            }
        }
    }
    fn check_nodes(nodes: &[Node], p: &Program, in_loop: bool) -> Result<(), IrError> {
        for n in nodes {
            match n {
                Node::Target(t) => {
                    for m in &t.maps {
                        check_sect(&m.sect, &p.decl(m.buf).name, p, in_loop)?;
                    }
                    for a in &t.body {
                        check_sect(&a.sect, &p.decl(a.buf).name, p, in_loop)?;
                    }
                }
                Node::TargetData { maps, body, .. } => {
                    for m in maps {
                        check_sect(&m.sect, &p.decl(m.buf).name, p, in_loop)?;
                    }
                    check_nodes(body, p, in_loop)?;
                }
                Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => {
                    for m in maps {
                        check_sect(&m.sect, &p.decl(m.buf).name, p, in_loop)?;
                    }
                }
                Node::Host(a) => check_sect(&a.sect, &p.decl(a.buf).name, p, in_loop)?,
                Node::If { then_, else_, .. } => {
                    check_nodes(then_, p, in_loop)?;
                    check_nodes(else_, p, in_loop)?;
                }
                Node::Loop { trip, body } => {
                    check_expr(&trip.0, p, in_loop, "trip count")?;
                    check_nodes(body, p, true)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
    for d in &p.buffers {
        if let Some(e) = &d.sym_len {
            check_expr(e, p, false, &d.name)?;
        }
        if let Some((_, s)) = &d.host_init {
            check_sect(s, &d.name, p, false)?;
        }
    }
    check_nodes(&p.nodes, p, false)
}

/// Map-clause constructors shared by the construct builders.
macro_rules! map_methods {
    () => {
        /// `map(to: buf)`.
        pub fn map_to(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::To, Sect::Full)
        }
        /// `map(from: buf)`.
        pub fn map_from(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::From, Sect::Full)
        }
        /// `map(tofrom: buf)`.
        pub fn map_tofrom(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::ToFrom, Sect::Full)
        }
        /// `map(alloc: buf)`.
        pub fn map_alloc(self, buf: BufId) -> Self {
            self.add_map(buf, MapType::Alloc, Sect::Full)
        }
        /// `map(to: buf[start:len])`.
        pub fn map_to_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::To, Sect::Elems { start, len })
        }
        /// `map(from: buf[start:len])`.
        pub fn map_from_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::From, Sect::Elems { start, len })
        }
        /// `map(tofrom: buf[start:len])`.
        pub fn map_tofrom_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::ToFrom, Sect::Elems { start, len })
        }
        /// `map(alloc: buf[start:len])`.
        pub fn map_alloc_sec(self, buf: BufId, start: u64, len: u64) -> Self {
            self.add_map(buf, MapType::Alloc, Sect::Elems { start, len })
        }
        /// A map clause with symbolic section bounds.
        pub fn map_sym(self, buf: BufId, map_type: MapType, start: Expr, len: Expr) -> Self {
            self.add_map(buf, map_type, Sect::Sym { start, len })
        }
    };
}

/// Builds one `target` construct; finish with [`TargetBuilder::done`].
pub struct TargetBuilder<'a> {
    p: &'a mut ProgramBuilder,
    node: TargetNode,
}

impl TargetBuilder<'_> {
    fn add_map(mut self, buf: BufId, map_type: MapType, sect: Sect) -> Self {
        self.node.maps.push(MapClause { buf, map_type, sect });
        self
    }

    map_methods!();

    /// Execute on a specific device (default `ACCEL0`).
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.node.device = device;
        self
    }

    /// Add the `nowait` clause.
    pub fn nowait(mut self) -> Self {
        self.node.nowait = true;
        self
    }

    /// `depend(in: buf)`.
    pub fn depend_read(mut self, buf: BufId) -> Self {
        self.node.depends.push(DependClause { buf, is_write: false });
        self
    }

    /// `depend(out: buf)` / `depend(inout: buf)`.
    pub fn depend_write(mut self, buf: BufId) -> Self {
        self.node.depends.push(DependClause { buf, is_write: true });
        self
    }

    fn access(mut self, buf: BufId, sect: Sect, is_write: bool, certainty: Certainty) -> Self {
        self.node.body.push(Access { buf, sect, is_write, certainty });
        self
    }

    /// Kernel reads the whole buffer on every execution.
    pub fn reads(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, false, Certainty::Must)
    }

    /// Kernel must-reads a section.
    pub fn reads_sec(self, buf: BufId, start: u64, len: u64) -> Self {
        self.access(buf, Sect::Elems { start, len }, false, Certainty::Must)
    }

    /// Kernel must-reads a symbolic section.
    pub fn reads_sym(self, buf: BufId, start: Expr, len: Expr) -> Self {
        self.access(buf, Sect::Sym { start, len }, false, Certainty::Must)
    }

    /// Kernel may-reads the whole buffer (data-dependent indices).
    pub fn may_reads(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, false, Certainty::May)
    }

    /// Kernel writes the whole buffer on every execution.
    pub fn writes(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, true, Certainty::Must)
    }

    /// Kernel must-writes a section.
    pub fn writes_sec(self, buf: BufId, start: u64, len: u64) -> Self {
        self.access(buf, Sect::Elems { start, len }, true, Certainty::Must)
    }

    /// Kernel must-writes a symbolic section.
    pub fn writes_sym(self, buf: BufId, start: Expr, len: Expr) -> Self {
        self.access(buf, Sect::Sym { start, len }, true, Certainty::Must)
    }

    /// Kernel may-writes the whole buffer (data-dependent indices).
    pub fn may_writes(self, buf: BufId) -> Self {
        self.access(buf, Sect::Full, true, Certainty::May)
    }

    /// Close the construct, returning its id (for [`ProgramBuilder::wait`]).
    pub fn done(self) -> TargetId {
        let id = self.node.id;
        let node = Node::Target(self.node);
        self.p.push(node);
        id
    }
}

/// Builds one `target data` region; finish with [`DataBuilder::scope`].
pub struct DataBuilder<'a> {
    p: &'a mut ProgramBuilder,
    device: DeviceId,
    maps: Vec<MapClause>,
}

impl DataBuilder<'_> {
    fn add_map(mut self, buf: BufId, map_type: MapType, sect: Sect) -> Self {
        self.maps.push(MapClause { buf, map_type, sect });
        self
    }

    map_methods!();

    /// Run the region body, then emit the region node.
    pub fn scope(self, f: impl FnOnce(&mut ProgramBuilder)) {
        let DataBuilder { p, device, maps } = self;
        p.frames.push(Vec::new());
        f(p);
        let body = p.frames.pop().expect("scope frame");
        p.push(Node::TargetData { device, maps, body });
    }
}

#[cfg(test)]
impl Program {
    /// Test helper: the symbolic `[start, start+len)` interval.
    fn nodes_sym_interval(&self, start: &Expr, len: &Expr, _extent: &Expr) -> (Expr, Expr) {
        (start.clone(), start.add(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = ProgramBuilder::new("sample");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.data().map_to(a).map_from(out).scope(|p| {
            p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        });
        p.host_read_sec(out, 0, 1);
        p.build()
    }

    #[test]
    fn builder_produces_the_expected_tree() {
        let prog = sample();
        assert_eq!(prog.buffers.len(), 2);
        assert_eq!(prog.nodes.len(), 2);
        let Node::TargetData { body, maps, .. } = &prog.nodes[0] else {
            panic!("expected a data region")
        };
        assert_eq!(maps.len(), 2);
        assert_eq!(body.len(), 1);
        let Node::Target(t) = &body[0] else { panic!("expected a target") };
        assert_eq!(t.body.len(), 2);
        assert!(!t.body[0].is_write && t.body[1].is_write);
    }

    #[test]
    fn may_cover_includes_host_init_and_merges() {
        let prog = sample();
        // `a` is host-initialised (write) and kernel-read.
        assert_eq!(prog.may_cover("a", true), vec![(0, 128)]);
        assert_eq!(prog.may_cover("a", false), vec![(0, 128)]);
        // `out` is kernel-written and host-read only in [0, 8).
        assert_eq!(prog.may_cover("out", false), vec![(0, 8)]);
        assert!(prog.covers("out", true, 0, 128));
        assert!(!prog.covers("out", false, 8, 16));
    }

    #[test]
    fn oversized_sections_clamp_in_covers() {
        let mut p = ProgramBuilder::new("bo");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to_sec(a, 0, 24).reads(a).done();
        let prog = p.build();
        // The cover never exceeds the declared extent.
        assert_eq!(prog.may_cover("a", false), vec![(0, 128)]);
    }

    #[test]
    fn sect_resolution() {
        assert_eq!(Sect::Full.resolve(10), (0, 10));
        assert_eq!(Sect::Elems { start: 4, len: 10 }.resolve(10), (4, 14));
        // near-u64::MAX sums saturate instead of wrapping
        assert_eq!(
            Sect::Elems { start: u64::MAX - 2, len: 8 }.resolve(10),
            (u64::MAX - 2, u64::MAX)
        );
        // zero-length sections resolve empty
        assert_eq!(Sect::Elems { start: 5, len: 0 }.resolve(10), (5, 5));
    }

    #[test]
    fn overflowing_section_is_a_typed_build_error() {
        let mut p = ProgramBuilder::new("bad-sect");
        let a = p.buffer("a", 8, 16);
        p.target().map_to_sec(a, u64::MAX - 2, 8).reads(a).done();
        let err = p.try_build().unwrap_err();
        assert_eq!(
            err,
            IrError::SectionOutOfRange { buffer: "a".into(), start: u64::MAX - 2, len: 8 }
        );
    }

    #[test]
    fn walk_descends_into_data_regions() {
        let prog = sample();
        let mut targets = 0;
        prog.walk(&mut |n| {
            if matches!(n, Node::Target(_)) {
                targets += 1;
            }
        });
        assert_eq!(targets, 1);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_scope_panics() {
        let mut p = ProgramBuilder::new("bad");
        p.frames.push(Vec::new());
        p.build();
    }

    fn symbolic_sample() -> (Program, ParamId) {
        let mut p = ProgramBuilder::new("sym");
        let n = p.param("n", 1, Some(64));
        let a = p.buffer_init_sym("a", 8, Expr::param(n));
        p.loop_(Trip(Expr::param(n)), |p| {
            p.target().map_tofrom(a).reads(a).writes(a).done();
        });
        p.host_read(a);
        p.taskwait();
        (p.build(), n)
    }

    #[test]
    fn concretize_unrolls_loops_and_renumbers_targets() {
        let (prog, n) = symbolic_sample();
        assert!(!prog.is_concrete());
        let conc = prog.concretize(&Binding::new().set(n, 3)).expect("concretize");
        assert!(conc.is_concrete());
        assert_eq!(conc.buffers[0].len, 3);
        let mut ids = Vec::new();
        conc.walk(&mut |node| {
            if let Node::Target(t) = node {
                ids.push(t.id.0);
            }
        });
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn concretize_requires_bound_params_in_range() {
        let (prog, n) = symbolic_sample();
        assert!(matches!(
            prog.concretize(&Binding::new()),
            Err(IrError::UnboundParam { .. })
        ));
        assert!(matches!(
            prog.concretize(&Binding::new().set(n, 65)),
            Err(IrError::OutOfRangeBinding { .. })
        ));
    }

    #[test]
    fn if_resolution_is_deterministic_in_the_seed() {
        let mut p = ProgramBuilder::new("branchy");
        let a = p.buffer_init("a", 8, 8);
        p.if_(
            true,
            |p| p.host_write(a),
            |p| p.host_read(a),
        );
        let prog = p.build();
        let count = |seed: u64| {
            let c = prog.concretize(&Binding::new().with_choices(seed)).unwrap();
            let mut writes = 0;
            c.walk(&mut |n| {
                if let Node::Host(acc) = n {
                    writes += acc.is_write as u32;
                }
            });
            writes
        };
        // same seed, same arm; some seed pair differs
        assert_eq!(count(1), count(1));
        assert!((0..16).map(count).collect::<std::collections::BTreeSet<_>>().len() == 2);
    }

    #[test]
    fn iv_outside_loop_is_rejected() {
        let mut p = ProgramBuilder::new("bad-iv");
        let a = p.buffer("a", 8, 16);
        p.target().reads_sym(a, Expr::iv(), Expr::lit(1)).done();
        assert!(matches!(p.try_build(), Err(IrError::IvOutsideLoop { .. })));
    }

    /// Satellite: resolve-vs-symbolic agreement — on seeded concrete
    /// instantiations, resolving a symbolic section after concretization
    /// equals evaluating its symbolic resolution.
    #[test]
    fn resolve_agrees_with_symbolic_resolution() {
        let mut r = rng::SplitMix64::new(0xA11CE);
        for _ in 0..10_000 {
            let start_c = r.below(32);
            let start_k = r.below(4) as i128;
            let len_c = r.below(32);
            let len_k = r.below(4) as i128;
            let pval = r.range(1, 100);
            let mut p = ProgramBuilder::new("prop");
            let n = p.param("n", 1, Some(100));
            let start = Expr::param(n).scale(start_k).add_const(start_c as i128);
            let len = Expr::param(n).scale(len_k).add_const(len_c as i128);
            let a = p.buffer_sym("a", 1, Expr::param(n).scale(8));
            p.target().map_tofrom(a).reads_sym(a, start.clone(), len.clone()).done();
            let prog = p.build();
            let conc = prog.concretize(&Binding::new().set(n, pval)).unwrap();
            // the concretized access section ...
            let mut got = None;
            conc.walk(&mut |node| {
                if let Node::Target(t) = node {
                    got = Some(t.body[0].sect.resolve(conc.buffers[0].len));
                }
            });
            // ... equals the symbolic interval evaluated at the binding.
            let extent = prog.buffers[0].extent();
            let (slo, shi) = prog.nodes_sym_interval(&start, &len, &extent);
            let ev = |e: &Expr| e.eval(&|_| Some(pval), None).unwrap() as u64;
            assert_eq!(got.unwrap(), (ev(&slo), ev(&shi)));
        }
    }
}
