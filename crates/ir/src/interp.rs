//! Deterministic IR interpreter: lowers a *concrete* [`Program`] onto
//! the real offload runtime.
//!
//! This is the executable half of the differential oracle behind
//! `arbalest fuzz-lint`: the static checker analyses a (possibly
//! symbolic) program, the interpreter runs its concretization against
//! the live runtime with the dynamic detector attached, and the two
//! report streams are compared. Buffers are lowered byte-for-byte as
//! `Buffer<u8>` (element `i` of size `z` becomes bytes
//! `[i*z, (i+1)*z)`), so the shadow-memory geometry matches the IR's
//! byte arithmetic exactly. `May` accesses and `May` host
//! initialisation flip deterministic coins drawn from the binding's
//! choice seed, so a run is reproducible from `(program, binding)`
//! alone.

use crate::rng::SplitMix64;
use crate::{Binding, BufferDecl, Certainty, IrError, MapClause, Node, Program, Sect, TargetId};
use arbalest_offload::buffer::Buffer;
use arbalest_offload::mapping::{Map, MapType};
use arbalest_offload::runtime::{Depend, Runtime, TaskHandle};
use std::collections::HashMap;

/// Run `program` on `rt`. Symbolic programs are concretized under
/// `binding` first; concrete programs ignore the parameter values but
/// still draw may-access coins from the choice seed. A trailing
/// `taskwait` is always issued so every `nowait` construct completes
/// before this returns.
pub fn run(program: &Program, binding: &Binding, rt: &Runtime) -> Result<(), IrError> {
    let storage;
    let conc: &Program = if program.is_concrete() {
        program
    } else {
        storage = program.concretize(binding)?;
        &storage
    };
    let mut exec = Exec {
        p: conc,
        rt,
        bufs: Vec::new(),
        coins: SplitMix64::new(binding.choice_seed ^ 0x1A7E_C0DE_D00D_F00D),
        handles: HashMap::new(),
    };
    exec.alloc_buffers();
    exec.nodes(&conc.nodes)?;
    rt.taskwait();
    Ok(())
}

/// One kernel-body operation, captured for the `move` closure.
struct KOp {
    buf: Buffer<u8>,
    lo: usize,
    hi: usize,
    is_write: bool,
}

struct Exec<'a> {
    p: &'a Program,
    rt: &'a Runtime,
    bufs: Vec<Buffer<u8>>,
    coins: SplitMix64,
    handles: HashMap<TargetId, TaskHandle>,
}

impl Exec<'_> {
    fn alloc_buffers(&mut self) {
        for d in &self.p.buffers {
            let byte_len = (d.elem_size * d.len) as usize;
            let buf = self.rt.alloc::<u8>(&d.name, byte_len);
            if let Some((c, sect)) = &d.host_init {
                let do_init = *c == Certainty::Must || self.coins.chance(1, 2);
                if do_init {
                    let (lo, hi) = byte_span(sect, d);
                    for i in lo..hi {
                        self.rt.write(&buf, i as usize, 1u8);
                    }
                }
            }
            self.bufs.push(buf);
        }
    }

    /// A map clause lowered to the runtime's byte-granular `Map`.
    /// Sections are *not* clamped: an oversized IR section becomes an
    /// oversized runtime section, exactly the §IV-D transfer-overflow
    /// the dynamic detector must flag.
    fn lower_map(&self, m: &MapClause) -> Map {
        let d = self.p.decl(m.buf);
        let b = &self.bufs[m.buf.0 as usize];
        match &m.sect {
            Sect::Full | Sect::Sym { .. } => match m.map_type {
                MapType::To => Map::to(b),
                MapType::From => Map::from(b),
                MapType::ToFrom => Map::tofrom(b),
                MapType::Alloc => Map::alloc(b),
                MapType::Release => Map::release(b),
                MapType::Delete => Map::delete(b),
            },
            Sect::Elems { start, len } => {
                let s = (start * d.elem_size) as usize;
                let l = (len * d.elem_size) as usize;
                match m.map_type {
                    MapType::To => Map::to_section(b, s, l),
                    MapType::From => Map::from_section(b, s, l),
                    MapType::ToFrom => Map::tofrom_section(b, s, l),
                    MapType::Alloc => Map::alloc_section(b, s, l),
                    // release/delete act on the whole present entry
                    MapType::Release => Map::release(b),
                    MapType::Delete => Map::delete(b),
                }
            }
        }
    }

    fn nodes(&mut self, nodes: &[Node]) -> Result<(), IrError> {
        for n in nodes {
            match n {
                Node::Target(t) => {
                    let mut tb = self.rt.target().on_device(t.device);
                    for m in &t.maps {
                        tb = tb.map(self.lower_map(m));
                    }
                    for dep in &t.depends {
                        let b = &self.bufs[dep.buf.0 as usize];
                        tb = tb.depend(if dep.is_write {
                            Depend::write(b)
                        } else {
                            Depend::read(b)
                        });
                    }
                    if t.nowait {
                        tb = tb.nowait();
                    }
                    let mut ops: Vec<KOp> = Vec::with_capacity(t.body.len());
                    for a in &t.body {
                        if a.certainty == Certainty::May && !self.coins.chance(1, 2) {
                            continue;
                        }
                        let d = self.p.decl(a.buf);
                        let (lo, hi) = byte_span(&a.sect, d);
                        if lo < hi {
                            ops.push(KOp {
                                buf: self.bufs[a.buf.0 as usize],
                                lo: lo as usize,
                                hi: hi as usize,
                                is_write: a.is_write,
                            });
                        }
                    }
                    let handle = tb.run(move |k| {
                        for op in &ops {
                            k.for_each(op.lo..op.hi, |k, i| {
                                if op.is_write {
                                    k.write(&op.buf, i, 1u8);
                                } else {
                                    let _ = k.read(&op.buf, i);
                                }
                            });
                        }
                    });
                    if t.nowait {
                        self.handles.insert(t.id, handle);
                    }
                }
                Node::TargetData { device, maps, body } => {
                    let rt = self.rt;
                    let mut db = rt.target_data().on_device(*device);
                    for m in maps {
                        db = db.map(self.lower_map(m));
                    }
                    db.scope(|_| self.nodes(body))?;
                }
                Node::EnterData { device, maps } => {
                    let lowered: Vec<Map> = maps.iter().map(|m| self.lower_map(m)).collect();
                    self.rt.target_enter_data(*device, &lowered);
                }
                Node::ExitData { device, maps } => {
                    let lowered: Vec<Map> = maps.iter().map(|m| self.lower_map(m)).collect();
                    self.rt.target_exit_data(*device, &lowered);
                }
                Node::Update { device, to_device, buf } => {
                    let b = &self.bufs[buf.0 as usize];
                    if *to_device {
                        self.rt.update_to_on(*device, b);
                    } else {
                        self.rt.update_from_on(*device, b);
                    }
                }
                Node::Host(a) => {
                    if a.certainty == Certainty::May && !self.coins.chance(1, 2) {
                        continue;
                    }
                    let d = self.p.decl(a.buf);
                    let (lo, hi) = byte_span(&a.sect, d);
                    let b = &self.bufs[a.buf.0 as usize];
                    for i in lo..hi {
                        if a.is_write {
                            self.rt.write(b, i as usize, 1u8);
                        } else {
                            let _ = self.rt.read(b, i as usize);
                        }
                    }
                }
                Node::Taskwait => {
                    self.rt.taskwait();
                    self.handles.clear();
                }
                Node::Wait { target } => {
                    if let Some(h) = self.handles.remove(target) {
                        h.wait();
                    }
                }
                Node::If { .. } | Node::Loop { .. } => {
                    // `run` concretizes first; control flow cannot reach here.
                    unreachable!("control-flow node in a concrete program");
                }
            }
        }
        Ok(())
    }
}

/// Byte span of an access/init section, clamped to the declared extent.
fn byte_span(sect: &Sect, d: &BufferDecl) -> (u64, u64) {
    let (lo, hi) = sect.resolve(d.len);
    let (lo, hi) = (lo.min(d.len), hi.min(d.len));
    (lo * d.elem_size, hi * d.elem_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use arbalest_offload::runtime::Config;
    use arbalest_offload::trace::TraceRecorder;
    use std::sync::Arc;

    #[test]
    fn interpreter_registers_declared_buffers() {
        let mut p = ProgramBuilder::new("interp-smoke");
        let a = p.buffer_init("a", 8, 4);
        let out = p.buffer("out", 4, 4);
        p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        p.host_read(out);
        let prog = p.build();

        let rec = Arc::new(TraceRecorder::new());
        let rt = Runtime::with_tool(Config::default(), rec.clone());
        run(&prog, &Binding::new(), &rt).expect("interp");
        let trace = rec.take();
        let registered: Vec<String> = trace
            .iter()
            .filter_map(|ev| match ev {
                arbalest_offload::trace::TraceEvent::BufferRegistered(info) => {
                    Some(info.name.clone())
                }
                _ => None,
            })
            .collect();
        assert_eq!(registered, vec!["a".to_string(), "out".to_string()]);
    }

    #[test]
    fn interpreter_unrolls_symbolic_programs() {
        let mut p = ProgramBuilder::new("interp-sym");
        let n = p.param("n", 1, Some(8));
        let a = p.buffer_init_sym("a", 8, crate::Expr::param(n));
        p.loop_(crate::Trip(crate::Expr::param(n)), |p| {
            p.target().map_tofrom(a).reads(a).writes(a).done();
        });
        p.taskwait();
        let prog = p.build();
        let rt = Runtime::new(Config::default());
        run(&prog, &Binding::new().set(n, 3), &rt).expect("interp");
        // 3 iterations * 8-byte elements * 3 elements were touched; the
        // program ran clean (no runtime errors).
        assert!(rt.errors().is_empty());
    }
}
