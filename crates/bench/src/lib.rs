//! # arbalest-bench
//!
//! The harness that regenerates every table and figure of the ARBALEST
//! evaluation (§VI). Binaries:
//!
//! * `table3` — precision comparison on the 56 DRACC-like benchmarks.
//! * `fig8`  — execution-time overhead of the five tools on the five
//!   SPEC-ACCEL-like workloads.
//! * `fig9`  — space overhead of the same runs.
//! * `postencil_report` — the §VI-D case study: ARBALEST's Fig. 7-style
//!   report on the buggy 503.postencil 1.2.
//!
//! Criterion benches (`cargo bench -p arbalest-bench`) cover the
//! micro-claims: O(1) VSM transitions, lock-free shadow updates, and
//! O(log m) interval-tree lookups.

use arbalest_baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use arbalest_spec::Preset;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tool names in the paper's presentation order.
pub const TOOLS: [&str; 5] = ["arbalest", "memcheck", "archer", "asan", "msan"];

/// Display name used in the paper's tables/figures.
pub fn paper_name(tool: &str) -> &'static str {
    match tool {
        "arbalest" => "Arbalest",
        "memcheck" => "Valgrind",
        "archer" => "Archer",
        "asan" => "ASan",
        "msan" => "MSan",
        _ => "?",
    }
}

/// Instantiate a tool model by name.
pub fn make_tool(name: &str) -> Arc<dyn Tool> {
    match name {
        "arbalest" => Arc::new(Arbalest::new(ArbalestConfig::default())),
        "memcheck" => Arc::new(Memcheck::new()),
        "archer" => Arc::new(Archer::new()),
        "asan" => Arc::new(AddressSanitizer::new()),
        "msan" => Arc::new(MemorySanitizer::new()),
        other => panic!("unknown tool {other}"),
    }
}

/// Outcome of one measured workload run.
pub struct Measurement {
    /// Wall-clock duration.
    pub wall: Duration,
    /// Workload checksum (sanity: identical across tools).
    pub checksum: f64,
    /// Application-side resident bytes (device memories).
    pub app_bytes: u64,
    /// Tool side tables (shadow memory, clocks, interval trees).
    pub tool_bytes: u64,
}

/// Run one SPEC-like workload under an optional tool and measure it.
pub fn measure(workload: &str, tool: Option<&str>, preset: Preset, team: usize) -> Measurement {
    let w = arbalest_spec::by_name(workload).expect("known workload");
    let cfg = Config::default().team_size(team);
    let rt = match tool {
        Some(name) => Runtime::with_tool(cfg, make_tool(name)),
        None => Runtime::new(cfg),
    };
    let start = Instant::now();
    let checksum = (w.run)(&rt, preset);
    let wall = start.elapsed();
    Measurement { wall, checksum, app_bytes: rt.resident_bytes(), tool_bytes: rt.tool_bytes() }
}

/// Parse the preset from `ARBALEST_PRESET` (test|small|medium).
pub fn preset_from_env() -> Preset {
    match std::env::var("ARBALEST_PRESET").as_deref() {
        Ok("test") => Preset::Test,
        Ok("medium") => Preset::Medium,
        _ => Preset::Small,
    }
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
