//! Measures the cost of the observability layer: the full 56-case DRACC
//! sweep with metrics enabled versus disabled.
//!
//! Both configurations run the *same* code — the handles are always
//! threaded through the detector and runtime — so the difference is
//! exactly the price of live counters, histograms, and span timing. The
//! disabled side uses [`Registry::disabled`], whose handles no-op behind
//! a single branch; this is what a monitored production run without
//! `--metrics-out` pays.
//!
//! The sweep is short (tens of milliseconds) and shared machines swing
//! by ±15% at that scale, an order of magnitude more than the effect
//! being measured — so single comparisons and min-of-N are both
//! hopeless. Instead: many *pairs* of back-to-back sweeps (adjacent in
//! time, so both sides of a pair see the same machine state, with the
//! order alternating to cancel any systematic second-run advantage),
//! one overhead ratio per pair, and the *median* ratio reported. Spikes
//! contaminate individual pairs in either direction; the median needs a
//! majority of pairs to be clean, not a perfectly quiet machine.
//! The binary exits non-zero when the measured overhead exceeds the
//! budget (default 5%, the bound DESIGN.md §12 commits to), making it
//! usable as a CI gate, and appends its result to `BENCH_obs.json`.
//!
//! ```text
//! obs_overhead [--quick] [--budget <pct>] [--out <file>]
//! ```

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_obs::Registry;
use arbalest_offload::json::Json;
use arbalest_offload::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One full DRACC sweep with every detector and runtime recording into
/// `reg`; returns the wall time in seconds.
fn sweep(reg: &Registry, cfg: &ArbalestConfig) -> f64 {
    let start = Instant::now();
    for b in arbalest_dracc::all() {
        let tool = Arc::new(Arbalest::with_registry(cfg.clone(), reg.clone()));
        let rt = Runtime::with_tool(Config::default().metrics(reg.clone()), tool);
        b.run(&rt);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut budget = 5.0f64;
    let mut out = "BENCH_obs.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--budget" => {
                budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget needs a percentage");
            }
            "--out" => out = it.next().expect("--out needs a file path").clone(),
            other => {
                eprintln!("unknown option '{other}'");
                std::process::exit(2);
            }
        }
    }
    let reps = if quick { 81 } else { 121 };
    let cases = arbalest_dracc::all().len();

    // A fresh registry per enabled sweep so series-registration cost is
    // included in the measurement. Three rungs on the ladder:
    //   off   — Registry::disabled(), the uninstrumented floor;
    //   on    — live metrics + span timing (the ≤ budget%-gated default);
    //   prov  — metrics plus per-buffer VSM provenance capture, the
    //           `arbalest explain` configuration (opt-in, reported but
    //           not gated: explain runs are diagnostic, not production).
    let prov_cfg = ArbalestConfig { provenance: true, ..ArbalestConfig::default() };
    let run_off = || sweep(&Registry::disabled(), &ArbalestConfig::default());
    let run_on = || sweep(&Registry::new(), &ArbalestConfig::default());
    let run_prov = || sweep(&Registry::new(), &prov_cfg);

    // Warm up caches and the allocator outside the measurement.
    let _ = run_off();
    let _ = run_on();
    let _ = run_prov();

    let mut ratios = Vec::with_capacity(reps);
    let mut prov_ratios = Vec::with_capacity(reps);
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    let mut best_prov = f64::MAX;
    for i in 0..reps {
        // Alternate which side goes first so a systematic cache/frequency
        // advantage of the second sweep cancels across pairs. The gated
        // off/on pair stays *adjacent* — anything in between sees a
        // different machine state and poisons the ratio.
        let (off, on) = if i % 2 == 0 {
            let off = run_off();
            (off, run_on())
        } else {
            let on = run_on();
            (run_off(), on)
        };
        ratios.push(on / off);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
    }
    // The informational provenance ladder runs as its own paired loop so
    // its allocation churn cannot leak into the gated measurement above.
    for i in 0..reps {
        let (off, prov) = if i % 2 == 0 {
            let off = run_off();
            (off, run_prov())
        } else {
            let prov = run_prov();
            (run_off(), prov)
        };
        prov_ratios.push(prov / off);
        best_prov = best_prov.min(prov);
    }
    let median = |r: &mut Vec<f64>| {
        r.sort_by(|a, b| a.partial_cmp(b).expect("sweep times are finite"));
        (r[r.len() / 2] - 1.0) * 100.0
    };
    let overhead_pct = median(&mut ratios);
    let prov_overhead_pct = median(&mut prov_ratios);

    println!("OBSERVABILITY OVERHEAD ({cases}-case DRACC sweep, median of {reps} paired ratios)");
    println!("  uninstrumented:       {:>9.3} ms  (best sweep)", best_off * 1e3);
    println!("  instrumented:         {:>9.3} ms  (best sweep)", best_on * 1e3);
    println!("  with provenance:      {:>9.3} ms  (best sweep)", best_prov * 1e3);
    println!("  overhead:             {overhead_pct:>8.2} %   (budget {budget}%)");
    println!("  provenance overhead:  {prov_overhead_pct:>8.2} %   (informational)");

    let entry = Json::obj(vec![
        ("bench", Json::Str("obs_overhead".into())),
        ("cases", Json::int(cases as u64)),
        ("reps", Json::int(reps as u64)),
        ("uninstrumented_s", Json::Num(best_off)),
        ("instrumented_s", Json::Num(best_on)),
        ("provenance_s", Json::Num(best_prov)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("provenance_overhead_pct", Json::Num(prov_overhead_pct)),
        ("budget_pct", Json::Num(budget)),
        ("pass", Json::Bool(overhead_pct <= budget)),
    ]);
    // The output file holds one JSON array of entries; append in place.
    let body = match std::fs::read_to_string(&out) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            if trimmed.is_empty() || trimmed == "[" {
                format!("[\n{}\n]\n", entry.emit())
            } else {
                format!("{},\n{}\n]\n", trimmed.trim_end_matches(','), entry.emit())
            }
        }
        Err(_) => format!("[\n{}\n]\n", entry.emit()),
    };
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    }
    println!("  appended to {out}");

    if overhead_pct > budget {
        eprintln!("FAIL: observability overhead {overhead_pct:.2}% exceeds budget {budget}%");
        std::process::exit(1);
    }
}

