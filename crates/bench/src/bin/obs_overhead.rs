//! Measures the cost of the observability layer: the full 56-case DRACC
//! sweep with metrics enabled versus disabled.
//!
//! Both configurations run the *same* code — the handles are always
//! threaded through the detector and runtime — so the difference is
//! exactly the price of live counters, histograms, and span timing. The
//! disabled side uses [`Registry::disabled`], whose handles no-op behind
//! a single branch; this is what a monitored production run without
//! `--metrics-out` pays.
//!
//! The sweep is short (tens of milliseconds) and shared machines swing
//! by ±15% at that scale, an order of magnitude more than the effect
//! being measured — so single comparisons and min-of-N are both
//! hopeless. Instead: many *pairs* of back-to-back sweeps (adjacent in
//! time, so both sides of a pair see the same machine state, with the
//! order alternating to cancel any systematic second-run advantage),
//! one overhead ratio per pair, and the *median* ratio reported. Spikes
//! contaminate individual pairs in either direction; the median needs a
//! majority of pairs to be clean, not a perfectly quiet machine.
//! The binary exits non-zero when the measured overhead exceeds the
//! budget (default 5%, the bound DESIGN.md §12 commits to), making it
//! usable as a CI gate, and appends its result to `BENCH_obs.json`.
//!
//! ```text
//! obs_overhead [--quick] [--budget <pct>] [--out <file>]
//! ```

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_obs::Registry;
use arbalest_offload::json::Json;
use arbalest_offload::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One full DRACC sweep with every detector and runtime recording into
/// `reg`; returns the wall time in seconds.
fn sweep(reg: &Registry) -> f64 {
    let start = Instant::now();
    for b in arbalest_dracc::all() {
        let tool = Arc::new(Arbalest::with_registry(ArbalestConfig::default(), reg.clone()));
        let rt = Runtime::with_tool(Config::default().metrics(reg.clone()), tool);
        b.run(&rt);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut budget = 5.0f64;
    let mut out = "BENCH_obs.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--budget" => {
                budget = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget needs a percentage");
            }
            "--out" => out = it.next().expect("--out needs a file path").clone(),
            other => {
                eprintln!("unknown option '{other}'");
                std::process::exit(2);
            }
        }
    }
    let reps = if quick { 81 } else { 121 };
    let cases = arbalest_dracc::all().len();

    // A fresh registry per enabled sweep so series-registration cost is
    // included in the measurement.
    let run_off = || sweep(&Registry::disabled());
    let run_on = || sweep(&Registry::new());

    // Warm up caches and the allocator outside the measurement.
    let _ = run_off();
    let _ = run_on();

    let mut ratios = Vec::with_capacity(reps);
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    for i in 0..reps {
        // Alternate which side goes first so a systematic cache/frequency
        // advantage of the second sweep cancels across pairs.
        let (off, on) = if i % 2 == 0 {
            let off = run_off();
            (off, run_on())
        } else {
            let on = run_on();
            (run_off(), on)
        };
        ratios.push(on / off);
        best_off = best_off.min(off);
        best_on = best_on.min(on);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("sweep times are finite"));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;

    println!("OBSERVABILITY OVERHEAD ({cases}-case DRACC sweep, median of {reps} paired ratios)");
    println!("  uninstrumented: {:>9.3} ms  (best sweep)", best_off * 1e3);
    println!("  instrumented:   {:>9.3} ms  (best sweep)", best_on * 1e3);
    println!("  overhead:       {overhead_pct:>8.2} %   (budget {budget}%)");

    let entry = Json::obj(vec![
        ("bench", Json::Str("obs_overhead".into())),
        ("cases", Json::int(cases as u64)),
        ("reps", Json::int(reps as u64)),
        ("uninstrumented_s", Json::Num(best_off)),
        ("instrumented_s", Json::Num(best_on)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("budget_pct", Json::Num(budget)),
        ("pass", Json::Bool(overhead_pct <= budget)),
    ]);
    // The output file holds one JSON array of entries; append in place.
    let body = match std::fs::read_to_string(&out) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            if trimmed.is_empty() || trimmed == "[" {
                format!("[\n{}\n]\n", entry.emit())
            } else {
                format!("{},\n{}\n]\n", trimmed.trim_end_matches(','), entry.emit())
            }
        }
        Err(_) => format!("[\n{}\n]\n", entry.emit()),
    };
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    }
    println!("  appended to {out}");

    if overhead_pct > budget {
        eprintln!("FAIL: observability overhead {overhead_pct:.2}% exceeds budget {budget}%");
        std::process::exit(1);
    }
}

