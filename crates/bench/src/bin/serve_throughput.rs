//! Throughput of the analysis service under concurrent clients.
//!
//! Spins up an in-process `arbalest-serve` on a loopback TCP socket,
//! records one DRACC trace, then hammers the server with `K` concurrent
//! client threads each submitting the trace `R` times. Reports aggregate
//! events/second, per-session latency, and the server's own counters
//! (busy rejections show the backpressure path engaging at small queue
//! capacities).
//!
//! ```text
//! ARBALEST_CLIENTS=8 ARBALEST_ROUNDS=4 ARBALEST_SHARDS=4 \
//!     cargo run --release -p arbalest-bench --bin serve_throughput
//! ```

use arbalest_core::ArbalestConfig;
use arbalest_offload::prelude::*;
use arbalest_offload::trace::TraceRecorder;
use arbalest_server::{Client, ListenAddr, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let clients = env_usize("ARBALEST_CLIENTS", 8);
    let rounds = env_usize("ARBALEST_ROUNDS", 4);
    let shards = env_usize("ARBALEST_SHARDS", 4);
    let queue_cap = env_usize("ARBALEST_QUEUE_CAP", 64);
    let bench_id = env_usize("ARBALEST_DRACC", 22) as u32;

    let bench = arbalest_dracc::by_id(bench_id).expect("unknown DRACC id");
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    let events = Arc::new(recorder.take());

    println!("SERVE THROUGHPUT: {} x{clients} client(s) x{rounds} round(s)", bench.dracc_id());
    println!(
        "trace = {} event(s), shards = {shards}, queue cap = {queue_cap}\n",
        events.len()
    );

    let server = Server::start(
        &ListenAddr::Tcp("127.0.0.1:0".into()),
        ServerConfig { shards, queue_cap, detector: ArbalestConfig::default(), ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = server.local_addr().clone();

    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let events = events.clone();
            std::thread::spawn(move || {
                let mut session_secs: Vec<f64> = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let t = Instant::now();
                    let mut client = Client::connect(&addr).expect("connect");
                    let reports = client.submit(&events).expect("submit");
                    session_secs.push(t.elapsed().as_secs_f64());
                    assert!(!reports.is_empty(), "expected findings from a buggy trace");
                }
                session_secs
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("client thread"));
    }
    let wall = start.elapsed().as_secs_f64();

    let mut stats_client = Client::connect(&addr).expect("connect");
    let stats = stats_client.stats().expect("stats");
    drop(stats_client);
    server.stop();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let total_events = (events.len() * clients * rounds) as f64;
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    println!("wall time          {wall:>10.3} s");
    println!("events analysed    {:>10.0}", total_events);
    println!("throughput         {:>10.0} events/s", total_events / wall);
    println!("session latency    mean {:.3} s   p50 {:.3} s   max {:.3} s",
        mean,
        latencies[latencies.len() / 2],
        latencies.last().copied().unwrap_or(0.0),
    );
    println!(
        "server counters    {} session(s), {} event(s), {} busy rejection(s)",
        stats.sessions_finished, stats.events_received, stats.busy_rejections
    );
}
