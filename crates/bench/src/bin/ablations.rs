//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. race engine on/off — how much of ARBALEST's cost is Archer's
//!    (§VI-E: "ARBALEST's execution time is dominated by Archer's race
//!    detection routine");
//! 2. interval-tree lookup cache on/off + measured hit rate (§IV-C's
//!    amortised-O(1) claim);
//! 3. device plugin pooled vs per-CV allocations — flips the Valgrind
//!    model's UUM column (why LLVM 9 and LLVM 11 era tools differ);
//! 4. staged vs direct `target update` transfers — flips MSan on
//!    DRACC_OMP_034 (§VI-C's "lack of OMPT" miss).

use arbalest_baselines::{Memcheck, MemorySanitizer};
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 16384;

fn saxpy_run(tool: Arc<Arbalest>) -> (f64, Arc<Arbalest>) {
    let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
    let x = rt.alloc_with::<f64>("x", N, |i| i as f64);
    let y = rt.alloc_with::<f64>("y", N, |_| 1.0);
    let start = Instant::now();
    for _ in 0..4 {
        rt.target().map(Map::to(&x)).map(Map::tofrom(&y)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = 2.0 * k.read(&x, i) + k.read(&y, i);
                k.write(&y, i, v);
            });
        });
    }
    (start.elapsed().as_secs_f64(), tool)
}

fn main() {
    println!("ABLATIONS (design-choice studies from DESIGN.md)\n");

    // 1 + 2: Arbalest cost decomposition.
    let (t_full, tool_full) =
        saxpy_run(Arc::new(Arbalest::new(ArbalestConfig::default())));
    let (t_norace, _) = saxpy_run(Arc::new(Arbalest::new(ArbalestConfig {
        check_races: false,
        ..Default::default()
    })));
    let (t_nocache, _) = saxpy_run(Arc::new(Arbalest::new(ArbalestConfig {
        lookup_cache: false,
        ..Default::default()
    })));
    println!("1. race engine:   full {:.3}s  vsm-only {:.3}s  -> races are {:.0}% of Arbalest's cost",
        t_full, t_norace, 100.0 * (t_full - t_norace).max(0.0) / t_full);
    println!(
        "2. lookup cache:  with {:.3}s (hit rate {:.1}%)  without {:.3}s  -> {:.2}x",
        t_full,
        100.0 * tool_full.stats().cache_hit_rate(),
        t_nocache,
        t_nocache / t_full.max(1e-9)
    );

    // 3. Pooled vs per-CV plugin allocations: the Valgrind column flips.
    let detect_22 = |pooled: bool| -> bool {
        let tool = Arc::new(Memcheck::new());
        let rt = Runtime::with_tool(Config::default().pooled(pooled), tool.clone());
        arbalest_dracc::by_id(22).unwrap().run(&rt);
        tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead)
    };
    println!(
        "3. plugin pooling: memcheck on DRACC_OMP_022 — pooled (LLVM-9 era): {}, per-CV (LLVM-11 era): {}",
        if detect_22(true) { "DETECTED" } else { "missed" },
        if detect_22(false) { "DETECTED" } else { "missed" },
    );

    // 4. Staged vs direct update transfers: MSan on DRACC_OMP_034 flips.
    let detect_34 = |staged: bool| -> bool {
        let tool = Arc::new(MemorySanitizer::new());
        let rt = Runtime::with_tool(Config::default().staged_updates(staged), tool.clone());
        arbalest_dracc::by_id(34).unwrap().run(&rt);
        tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead)
    };
    println!(
        "4. update staging: msan on DRACC_OMP_034 — staged (real runtimes): {}, direct: {}",
        if detect_34(true) { "DETECTED" } else { "missed" },
        if detect_34(false) { "DETECTED" } else { "missed" },
    );

    // Sanity gates for CI use.
    assert!(t_norace < t_full, "race engine must cost something");
    assert!(!detect_22(true) && detect_22(false));
    assert!(!detect_34(true) && detect_34(false));
    println!("\nall ablation expectations hold");
}
