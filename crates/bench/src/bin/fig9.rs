//! Regenerates **Fig. 9**: space overhead of the five tools on the five
//! SPEC-ACCEL-like workloads.
//!
//! We report resident application memory (the simulated device memories)
//! and each tool's side tables (shadow pages, interval trees, vector
//! clocks). The paper's shapes: the LLVM-family tools (Arbalest, Archer,
//! ASan, MSan) are close to each other because they share one shadow
//! implementation; Arbalest ≈ Archer since it encodes its state into
//! Archer's shadow words (§VI-F).

use arbalest_bench::{fmt_bytes, measure, paper_name, preset_from_env, TOOLS};

fn main() {
    let preset = preset_from_env();
    let team: usize =
        std::env::var("ARBALEST_TEAM").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("FIG. 9: Space Overhead on SPEC ACCEL (reproduction)");
    println!("preset = {preset:?}, team = {team}\n");
    print!("{:<12}{:>14}", "benchmark", "Native");
    for tool in TOOLS {
        print!("{:>14}", paper_name(tool));
    }
    println!();
    println!("{}", "-".repeat(12 + 14 * (1 + TOOLS.len())));

    let mut rows: Vec<Vec<u64>> = Vec::new();
    for w in arbalest_spec::workloads() {
        let native = measure(w.name, None, preset, team);
        print!("{:<12}{:>14}", w.name, fmt_bytes(native.app_bytes));
        let mut row = vec![native.app_bytes];
        for tool in TOOLS {
            let m = measure(w.name, Some(tool), preset, team);
            let total = m.app_bytes + m.tool_bytes;
            print!("{:>14}", fmt_bytes(total));
            row.push(total);
        }
        println!();
        rows.push(row);
    }
    println!("{}", "-".repeat(12 + 14 * (1 + TOOLS.len())));

    // Shape check: Arbalest's footprint tracks Archer's (same shadow).
    let ratio: f64 = rows
        .iter()
        .map(|r| r[1] as f64 / r[3] as f64)
        .sum::<f64>()
        / rows.len() as f64;
    println!(
        "\nArbalest/Archer mean footprint ratio: {ratio:.2} \
         (paper: close to 1 — Arbalest encodes its state into Archer's shadow words)"
    );
}
