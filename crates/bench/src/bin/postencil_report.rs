//! Regenerates the **§VI-D case study** (Fig. 6/7): run the buggy
//! 503.postencil 1.2 pointer-swap variant under ARBALEST and print the
//! Archer-style bug report pinpointing the stale output read.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use arbalest_spec::Preset;
use std::sync::Arc;

fn main() {
    println!("***** CPU-based 7 points stencil codes (reproduction of 503.postencil) *****");
    println!("running the SPEC ACCEL 1.2 buggy version (host-side pointer swap)...\n");
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
    let checksum = arbalest_spec::postencil::run_buggy(&rt, Preset::Test);
    println!("output checksum (host view): {checksum}");

    let reports = tool.reports();
    let stale: Vec<_> = reports.iter().filter(|r| r.kind == ReportKind::MappingUsd).collect();
    println!("\nARBALEST found {} report(s); stale-access report(s): {}\n", reports.len(), stale.len());
    for r in &reports {
        print!("{}", r.render());
    }
    assert!(
        !stale.is_empty(),
        "the §VI-D data mapping issue (stale access at the output read) must be detected"
    );
    println!("\n(paper Fig. 7: 'WARNING: ThreadSanitizer: data mapping issue (stale access)')");
}
