//! Regenerates **Table III**: effectiveness comparison on the DRACC-like
//! benchmarks — which of the five tools reports each of the 16 seeded
//! data mapping issues, plus the false-positive check over the 40
//! correct benchmarks.

use arbalest_bench::{make_tool, paper_name, TOOLS};
use arbalest_offload::prelude::*;

fn detected(bench: &arbalest_dracc::Benchmark, tool: &str) -> bool {
    let t = make_tool(tool);
    let rt = Runtime::with_tool(Config::default(), t);
    bench.run(&rt);
    let effect = bench.expected.expect("buggy");
    rt.reports().iter().any(|r| r.kind.credits_effect(effect))
}

fn any_report(bench: &arbalest_dracc::Benchmark, tool: &str) -> bool {
    let t = make_tool(tool);
    let rt = Runtime::with_tool(Config::default(), t);
    bench.run(&rt);
    !rt.reports().is_empty()
}

fn main() {
    println!("TABLE III: Effectiveness Comparison on DRACC Benchmarks");
    println!("(reproduction; \u{2713} = data mapping issue reported, - = missed)\n");
    let rows: [(&str, &str, &[u32]); 3] = [
        ("22, 24, 49, 50, 51", "UUM", &[22, 24, 49, 50, 51]),
        ("23, 25, 28, 29, 30, 31", "BO", &[23, 25, 28, 29, 30, 31]),
        ("26, 27, 32, 33, 34", "USD", &[26, 27, 32, 33, 34]),
    ];

    print!("{:<26}{:<8}", "Benchmark ID", "Effect");
    for tool in TOOLS {
        print!("{:<10}", paper_name(tool));
    }
    println!();
    println!("{}", "-".repeat(26 + 8 + 10 * TOOLS.len()));

    let mut totals = [0usize; 5];
    let mut arbalest_all = true;
    for (ids_str, effect, ids) in rows {
        print!("{:<26}{:<8}", ids_str, effect);
        for (ti, tool) in TOOLS.iter().enumerate() {
            let mut all = true;
            for id in ids {
                let b = arbalest_dracc::by_id(*id).expect("benchmark");
                if detected(&b, tool) {
                    totals[ti] += 1;
                } else {
                    all = false;
                }
            }
            print!("{:<10}", if all { "\u{2713}" } else { "-" });
            if !all && *tool == "arbalest" {
                arbalest_all = false;
            }
        }
        println!();
    }
    println!("{}", "-".repeat(26 + 8 + 10 * TOOLS.len()));
    print!("{:<26}{:<8}", "Overall", "");
    for t in totals {
        print!("{:<10}", format!("{t}/16"));
    }
    println!("\n");

    // The 40 correct benchmarks: false-positive check.
    let mut fps = 0usize;
    for b in arbalest_dracc::correct() {
        for tool in TOOLS {
            if any_report(&b, tool) {
                println!("FALSE POSITIVE: {} on {}", paper_name(tool), b.dracc_id());
                fps += 1;
            }
        }
    }
    println!(
        "False positives on the 40 correct benchmarks (x 5 tools): {fps} \
         (paper: none of the five tools report a false positive)"
    );
    println!("\nPaper's row: Arbalest 16/16, Valgrind 6/16, Archer 0/16, ASan 6/16, MSan 5/16");
    assert!(arbalest_all, "ARBALEST must detect every seeded issue");
}
