//! Static-vs-dynamic verdict matrix over the 56 DRACC benchmarks.
//!
//! For every benchmark, runs `arbalest lint`'s analyzer over the
//! hand-authored IR model and the dynamic detector over the real
//! execution, then prints one row comparing the verdicts. The matrix is
//! the evidence behind the soundness contract:
//!
//! * every `must` static diagnostic is confirmed by a same-kind dynamic
//!   report (no false `must`s), and
//! * the 40 correct benchmarks draw no static diagnostic of any severity
//!   (no false positives), while every seeded bug draws at least one.
//!
//! The one `may`-only row (050) is the §VI-G case: whether the input
//! array is initialised depends on program input, so the static verdict
//! stays "may" and the dynamic run decides it.

use arbalest_bench::make_tool;
use arbalest_offload::prelude::*;
use arbalest_static::{analyze, Severity};
use std::collections::BTreeSet;

fn main() {
    println!("STATIC vs DYNAMIC: arbalest lint on the 56 DRACC benchmarks");
    println!("(must/may = static severities; dynamic = detector report kinds)\n");
    println!(
        "{:<14}{:<8}{:<18}{:<18}{:<10}",
        "Benchmark", "Seeded", "Static (must)", "Static (may)", "Dynamic"
    );
    println!("{}", "-".repeat(68));

    let mut bad_rows = 0usize;
    for b in arbalest_dracc::all() {
        let model = arbalest_dracc::ir_models::ir_model(b.id).expect("model");
        let diags = analyze(&model);

        let tool = make_tool("arbalest");
        let rt = Runtime::with_tool(Config::default(), tool);
        b.run(&rt);
        let dynamic: Vec<Report> = rt.reports();

        let kinds = |sev: Severity| -> BTreeSet<&'static str> {
            diags
                .iter()
                .filter(|d| d.severity == sev)
                .map(|d| d.kind.label())
                .collect()
        };
        let must = kinds(Severity::Must);
        let may = kinds(Severity::May);
        let dyn_kinds: BTreeSet<&'static str> =
            dynamic.iter().map(|r| r.kind.label()).collect();

        let fmt = |s: &BTreeSet<&'static str>| {
            if s.is_empty() {
                "-".to_string()
            } else {
                s.iter().copied().collect::<Vec<_>>().join(",")
            }
        };

        // Row verdict: must ⊆ dynamic; correct rows silent; buggy rows
        // flagged statically (must, or may for the data-dependent 050).
        let sound = must.iter().all(|k| dyn_kinds.contains(k));
        let row_ok = match b.expected {
            None => diags.is_empty() && dynamic.is_empty(),
            Some(_) => sound && (!must.is_empty() || !may.is_empty()),
        };
        if !row_ok {
            bad_rows += 1;
        }

        println!(
            "{:<14}{:<8}{:<18}{:<18}{:<10}{}",
            b.dracc_id(),
            b.expected.map(|e| format!("{e:?}")).unwrap_or_else(|| "-".into()),
            fmt(&must),
            fmt(&may),
            fmt(&dyn_kinds),
            if row_ok { "" } else { "  <-- MISMATCH" },
        );
    }

    println!("{}", "-".repeat(68));
    if bad_rows == 0 {
        println!("All 56 rows consistent: must ⊆ dynamic, correct benchmarks silent.");
    } else {
        println!("{bad_rows} row(s) inconsistent.");
        std::process::exit(1);
    }
}
