//! Throughput of the durability layer: WAL append bandwidth, snapshot
//! sizes, and cold-recovery latency over the full 56-case DRACC corpus.
//!
//! Three phases, all against a throwaway data directory:
//!
//! 1. **Append** — every case's trace is WAL-appended in server-sized
//!    batches and synced; the phase is repeated and the best wall time
//!    kept (append bandwidth is what `serve --data-dir` pays before
//!    each ack, so MB/s and events/s here bound ingest throughput).
//! 2. **Snapshot** — each case's full analysis state is captured with
//!    `to_snapshot` and encoded; sizes show what a snapshot trigger
//!    writes and what an `Export` frame carries.
//! 3. **Cold recovery** — each session is rebuilt from disk twice:
//!    once replaying the whole WAL (worst case: crash with no
//!    snapshot), once from a full-coverage snapshot after compaction
//!    (best case). The p50/p99 spread across the 56 cases is the
//!    restart-latency budget a deployment should plan for.
//!
//! Appends one JSON entry to `BENCH_store.json` (see `--out`).
//!
//! ```text
//! store_throughput [--quick] [--out <file>] [--fsync <always|group[=n]|never>]
//! ```

use arbalest_core::{AnalysisSession, ArbalestConfig};
use arbalest_obs::Registry;
use arbalest_offload::json::Json;
use arbalest_offload::prelude::*;
use arbalest_offload::trace::{TraceEvent, TraceRecorder};
use arbalest_store::{Store, StoreConfig};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Server-sized event batches: one WAL record per `Events` frame.
const BATCH: usize = 1024;

fn record(bench: &arbalest_dracc::Benchmark) -> Vec<TraceEvent> {
    let recorder = Arc::new(TraceRecorder::new());
    let rt = Runtime::with_tool(Config::default(), recorder.clone());
    bench.run(&rt);
    recorder.take()
}

/// Sum of `wal-*.log` sizes under every session of `root`, in bytes.
fn wal_bytes_on_disk(root: &Path) -> u64 {
    let mut total = 0;
    let Ok(sessions) = std::fs::read_dir(root.join("sessions")) else { return 0 };
    for session in sessions.flatten() {
        let Ok(files) = std::fs::read_dir(session.path()) else { continue };
        for f in files.flatten() {
            if f.file_name().to_string_lossy().starts_with("wal-") {
                total += f.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// `q`-quantile of an unsorted sample (nearest-rank on the sorted copy).
fn quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_store.json".to_string();
    let mut fsync = arbalest_store::FsyncPolicy::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a file path").clone(),
            "--fsync" => {
                fsync = it
                    .next()
                    .expect("--fsync needs a policy")
                    .parse()
                    .expect("bad fsync policy");
            }
            other => {
                eprintln!("unknown option '{other}'");
                std::process::exit(2);
            }
        }
    }
    let append_reps = if quick { 1 } else { 3 };

    let traces: Vec<(u64, Vec<TraceEvent>)> = arbalest_dracc::all()
        .iter()
        .enumerate()
        .map(|(i, b)| (i as u64, record(b)))
        .collect();
    let cases = traces.len();
    let total_events: usize = traces.iter().map(|(_, ev)| ev.len()).sum();
    println!("STORE THROUGHPUT: {cases} DRACC case(s), {total_events} event(s), fsync {fsync}");

    let root = std::env::temp_dir().join(format!("arbalest-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = StoreConfig { fsync, ..StoreConfig::default() };
    let registry = Registry::disabled();

    // Phase 1: WAL append. Fresh subdirectory per rep so every rep pays
    // the same creates; the last rep's directory feeds phase 3.
    let mut best_append = f64::MAX;
    let mut data_dir = root.join("rep-0");
    for rep in 0..append_reps {
        data_dir = root.join(format!("rep-{rep}"));
        let store = Store::open(&data_dir, cfg.clone(), &registry).expect("open store");
        let t = Instant::now();
        for (id, events) in &traces {
            let mut log = store.open_log(*id, 0).expect("open log");
            for batch in events.chunks(BATCH) {
                log.append(batch).expect("append");
            }
            log.sync().expect("sync");
        }
        best_append = best_append.min(t.elapsed().as_secs_f64());
    }
    let wal_bytes = wal_bytes_on_disk(&data_dir);
    let append_mb_s = wal_bytes as f64 / 1e6 / best_append;
    let append_ev_s = total_events as f64 / best_append;
    println!(
        "  append    {:>9.3} ms  {:>8.1} MB/s  {:>11.0} events/s  ({} byte(s) on disk)",
        best_append * 1e3,
        append_mb_s,
        append_ev_s,
        wal_bytes
    );

    // Phase 2: snapshot sizes — full analysis state per case, encoded
    // exactly as the snapshot trigger and the Export frame would.
    let store = Store::open(&data_dir, cfg.clone(), &registry).expect("reopen store");
    let mut snap_bytes: Vec<f64> = Vec::with_capacity(cases);
    let mut snap_total = 0u64;
    for (id, events) in &traces {
        let session = AnalysisSession::new(ArbalestConfig::default());
        session.feed_batch(events);
        let snap = session.to_snapshot();
        let encoded = arbalest_store::encode_session_snapshot(&snap).len() as u64;
        snap_total += encoded;
        snap_bytes.push(encoded as f64);
        store.write_snapshot(*id, &snap).expect("write snapshot");
    }
    println!(
        "  snapshot  {:>9} byte(s) total   p50 {:>7.0}   max {:>7.0}",
        snap_total,
        quantile(&snap_bytes, 0.5),
        quantile(&snap_bytes, 1.0)
    );

    // Phase 3a: cold recovery replaying the full WAL (the snapshots
    // written above are deleted first — worst-case restart).
    for (id, _) in &traces {
        let dir = store.session_dir(*id);
        for f in std::fs::read_dir(&dir).expect("session dir").flatten() {
            if f.file_name().to_string_lossy().starts_with("snapshot-") {
                std::fs::remove_file(f.path()).expect("drop snapshot");
            }
        }
    }
    let mut wal_lat_ms: Vec<f64> = Vec::with_capacity(cases);
    for (id, events) in &traces {
        let t = Instant::now();
        let rec = store
            .recover_session(*id, &ArbalestConfig::default(), &registry)
            .expect("recover from WAL");
        wal_lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rec.events, events.len() as u64, "session {id}: WAL replay lost events");
        assert!(!rec.torn && !rec.corrupt, "session {id}: clean WAL reported damage");
    }
    let (wal_p50, wal_p99) = (quantile(&wal_lat_ms, 0.5), quantile(&wal_lat_ms, 0.99));
    println!("  recover   WAL replay        p50 {wal_p50:>7.3} ms   p99 {wal_p99:>7.3} ms");

    // Phase 3b: recovery from a full-coverage snapshot after compaction
    // (best-case restart; the WAL tail holds nothing past the snapshot).
    let mut snap_lat_ms: Vec<f64> = Vec::with_capacity(cases);
    for (id, events) in &traces {
        let session = AnalysisSession::new(ArbalestConfig::default());
        session.feed_batch(events);
        store.write_snapshot(*id, &session.to_snapshot()).expect("rewrite snapshot");
        store.compact(*id, events.len() as u64).expect("compact");
        let t = Instant::now();
        let rec = store
            .recover_session(*id, &ArbalestConfig::default(), &registry)
            .expect("recover from snapshot");
        snap_lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rec.events, events.len() as u64, "session {id}: snapshot recovery lost events");
    }
    let (snap_p50, snap_p99) = (quantile(&snap_lat_ms, 0.5), quantile(&snap_lat_ms, 0.99));
    println!("  recover   snapshot+compact  p50 {snap_p50:>7.3} ms   p99 {snap_p99:>7.3} ms");

    let _ = std::fs::remove_dir_all(&root);

    let entry = Json::obj(vec![
        ("bench", Json::Str("store_throughput".into())),
        ("cases", Json::int(cases as u64)),
        ("events", Json::int(total_events as u64)),
        ("fsync_policy", Json::Str(fsync.to_string())),
        ("wal_bytes", Json::int(wal_bytes)),
        ("append_s", Json::Num(best_append)),
        ("append_mb_per_s", Json::Num(append_mb_s)),
        ("append_events_per_s", Json::Num(append_ev_s)),
        ("snapshot_total_bytes", Json::int(snap_total)),
        ("snapshot_p50_bytes", Json::Num(quantile(&snap_bytes, 0.5))),
        ("snapshot_max_bytes", Json::Num(quantile(&snap_bytes, 1.0))),
        ("recover_wal_p50_ms", Json::Num(wal_p50)),
        ("recover_wal_p99_ms", Json::Num(wal_p99)),
        ("recover_snapshot_p50_ms", Json::Num(snap_p50)),
        ("recover_snapshot_p99_ms", Json::Num(snap_p99)),
    ]);
    // The output file holds one JSON array of entries; append in place.
    let body = match std::fs::read_to_string(&out) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            if trimmed.is_empty() || trimmed == "[" {
                format!("[\n{}\n]\n", entry.emit())
            } else {
                format!("{},\n{}\n]\n", trimmed.trim_end_matches(','), entry.emit())
            }
        }
        Err(_) => format!("[\n{}\n]\n", entry.emit()),
    };
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("write {out}: {e}");
        std::process::exit(1);
    }
    println!("  appended to {out}");
}
