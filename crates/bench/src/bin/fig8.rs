//! Regenerates **Fig. 8**: execution-time overhead of the five tools on
//! the five SPEC-ACCEL-like workloads.
//!
//! For each workload we report the native execution time (uninstrumented
//! runtime — the substitution for the paper's "Native-CPU"; no GPU is
//! simulated, see DESIGN.md) and the slowdown factor of each tool. The
//! paper's headline shapes to look for:
//!
//! * Arbalest ≈ Archer (race detection dominates Arbalest's cost, §VI-E);
//! * Valgrind worst on most workloads (serialised, interpreted);
//! * ASan/MSan between native and the race-detecting tools;
//! * the compute-bound workloads (pomriq, pep) show the flattest ratios.
//!
//! Size via `ARBALEST_PRESET` = test | small (default) | medium; team
//! size via `ARBALEST_TEAM` (default 4).

use arbalest_bench::{measure, paper_name, preset_from_env, TOOLS};

fn main() {
    let preset = preset_from_env();
    let team: usize =
        std::env::var("ARBALEST_TEAM").ok().and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("FIG. 8: Time Overhead on SPEC ACCEL (reproduction)");
    println!("preset = {preset:?}, team = {team}\n");
    print!("{:<12}{:>12}", "benchmark", "Native");
    for tool in TOOLS {
        print!("{:>12}", paper_name(tool));
    }
    println!();
    print!("{:<12}{:>12}", "", "(secs)");
    for _ in TOOLS {
        print!("{:>12}", "(slowdown)");
    }
    println!();
    println!("{}", "-".repeat(12 + 12 * (1 + TOOLS.len())));

    let mut slowdowns: Vec<(String, Vec<f64>)> = Vec::new();
    for w in arbalest_spec::workloads() {
        // Warm-up + best-of-2 native to stabilise the baseline.
        let _ = measure(w.name, None, preset, team);
        let native1 = measure(w.name, None, preset, team);
        let native2 = measure(w.name, None, preset, team);
        let native = native1.wall.min(native2.wall);
        let base_checksum = native1.checksum;
        print!("{:<12}{:>12.3}", w.name, native.as_secs_f64());
        let mut row = Vec::new();
        for tool in TOOLS {
            let m = measure(w.name, Some(tool), preset, team);
            let factor = m.wall.as_secs_f64() / native.as_secs_f64().max(1e-9);
            assert!(
                (m.checksum - base_checksum).abs() <= 1e-6 * base_checksum.abs().max(1.0),
                "{}: checksum drift under {tool}: {} vs {base_checksum}",
                w.name,
                m.checksum
            );
            print!("{:>11.1}x", factor);
            row.push(factor);
        }
        println!();
        slowdowns.push((w.name.to_string(), row));
    }
    println!("{}", "-".repeat(12 + 12 * (1 + TOOLS.len())));

    // Summary shape checks (the paper's qualitative findings).
    let avg = |idx: usize| -> f64 {
        slowdowns.iter().map(|(_, r)| r[idx]).sum::<f64>() / slowdowns.len() as f64
    };
    let (arb, val, arch, asan, msan) = (avg(0), avg(1), avg(2), avg(3), avg(4));
    println!("\ngeomean-ish averages: Arbalest {arb:.1}x, Valgrind {val:.1}x, Archer {arch:.1}x, ASan {asan:.1}x, MSan {msan:.1}x");
    println!("paper shape: Arbalest ~= Archer (race detection dominates): {}",
        if (arb / arch) < 2.0 { "HOLDS" } else { "DIVERGES" });
    println!("paper shape: Arbalest faster than Valgrind on >= 3 of 5: {}", {
        let wins = slowdowns.iter().filter(|(_, r)| r[0] < r[1]).count();
        if wins >= 3 { format!("HOLDS ({wins}/5)") } else { format!("DIVERGES ({wins}/5)") }
    });
    println!("paper range: Arbalest slowdown within 3.3x-120x: {}", {
        let lo = slowdowns.iter().map(|(_, r)| r[0]).fold(f64::INFINITY, f64::min);
        let hi = slowdowns.iter().map(|(_, r)| r[0]).fold(0.0, f64::max);
        format!("measured {lo:.1}x-{hi:.1}x")
    });
}
