//! Repair-synthesis table over the 15 must-buggy DRACC benchmarks.
//!
//! For every model the static analyzer convicts at `Must`, runs
//! `arbalest fix`'s synthesis engine and prints one row: the edit the
//! engine chose, how many candidates it had to try, and the modeled
//! transfer bytes before and after the repair (a repair may legitimately
//! *raise* the byte count — copying in a buffer the buggy program never
//! transferred is exactly the fix). Every row must repair with both
//! oracles clean or the binary exits nonzero: the table doubles as the
//! acceptance gate for the repair matrix.

use arbalest_ir::Binding;
use arbalest_static::repair::synthesize_fix;

/// The benchmarks whose seeded bug draws a `Must` static verdict.
/// DRACC 050 stays `May`-only (§VI-G) and is deliberately absent.
const MUST_BUGGY: [u32; 15] = [22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 49, 51];

fn main() {
    println!("REPAIR SYNTHESIS: arbalest fix on the 15 must-buggy DRACC benchmarks");
    println!("(bytes = modeled host<->device transfer volume, Table I semantics)\n");
    println!(
        "{:<14}{:>6}{:>11}{:>13}{:>13}{:>9}  chosen edit",
        "Benchmark", "edits", "candidates", "bytes before", "bytes after", "delta"
    );
    println!("{}", "-".repeat(100));

    let binding = Binding::new();
    let mut unrepaired = 0usize;
    for id in MUST_BUGGY {
        let program = arbalest_dracc::ir_models::ir_model(id).expect("model");
        let out = synthesize_fix(&program.name, &program, &binding);
        if !out.repaired() {
            unrepaired += 1;
            println!(
                "{:<14}{:>6}{:>11}{:>13}{:>13}{:>9}  UNREPAIRED",
                out.name, "-", out.candidates_tried, out.bytes_before, "-", "-"
            );
            continue;
        }
        let patch = out.patch.as_ref().expect("repaired implies patch");
        let edits = patch
            .describe(&program)
            .unwrap_or_default()
            .join("; ");
        let delta = out.bytes_after as i64 - out.bytes_before as i64;
        println!(
            "{:<14}{:>6}{:>11}{:>13}{:>13}{:>+9}  {}",
            out.name,
            patch.edits.len(),
            out.candidates_tried,
            out.bytes_before,
            out.bytes_after,
            delta,
            edits,
        );
    }

    println!("{}", "-".repeat(100));
    if unrepaired == 0 {
        println!("All 15 rows repaired: zero Must, no new May, zero dynamic reports.");
    } else {
        println!("{unrepaired} row(s) unrepaired.");
        std::process::exit(1);
    }
}
