//! End-to-end per-tool overhead on a fixed kernel — the criterion-grade
//! companion to `fig8`: one memory-bound kernel (saxpy over a mapped
//! array) run native and under each of the five tools.
//!
//! Also includes the ablation benches DESIGN.md calls out:
//! * `arbalest_no_races` — VSM only, race engine off (how much of
//!   ARBALEST's cost is Archer's, §VI-E);
//! * `arbalest_no_cache` — interval-tree lookups without the one-entry
//!   cache (§IV-C's amortisation claim).

use arbalest_bench::make_tool;
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const N: usize = 4096;

fn saxpy(rt: &Runtime) -> f64 {
    let x = rt.alloc_with::<f64>("x", N, |i| i as f64);
    let y = rt.alloc_with::<f64>("y", N, |_| 1.0);
    rt.target().map(Map::to(&x)).map(Map::tofrom(&y)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = 2.0 * k.read(&x, i) + k.read(&y, i);
            k.write(&y, i, v);
        });
    });
    rt.read(&y, N - 1)
}

fn bench_tools(c: &mut Criterion) {
    let mut group = c.benchmark_group("saxpy_4k");
    group.bench_function("native", |b| {
        b.iter(|| saxpy(&Runtime::new(Config::default().team_size(2))))
    });
    for tool in ["arbalest", "archer", "asan", "msan", "memcheck"] {
        group.bench_function(tool, |b| {
            b.iter(|| {
                let rt = Runtime::with_tool(Config::default().team_size(2), make_tool(tool));
                saxpy(&rt)
            })
        });
    }
    group.bench_function("arbalest_no_races", |b| {
        b.iter(|| {
            let tool = Arc::new(Arbalest::new(ArbalestConfig {
                check_races: false,
                ..Default::default()
            }));
            let rt = Runtime::with_tool(Config::default().team_size(2), tool);
            saxpy(&rt)
        })
    });
    group.bench_function("arbalest_no_cache", |b| {
        b.iter(|| {
            let tool = Arc::new(Arbalest::new(ArbalestConfig {
                lookup_cache: false,
                ..Default::default()
            }));
            let rt = Runtime::with_tool(Config::default().team_size(2), tool);
            saxpy(&rt)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_tools
}
criterion_main!(benches);
