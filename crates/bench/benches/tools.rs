//! End-to-end per-tool overhead on a fixed kernel — the timed companion
//! to `fig8`: one memory-bound kernel (saxpy over a mapped array) run
//! native and under each of the five tools.
//!
//! Also includes the ablation benches DESIGN.md calls out:
//! * `arbalest_no_races` — VSM only, race engine off (how much of
//!   ARBALEST's cost is Archer's, §VI-E);
//! * `arbalest_no_cache` — interval-tree lookups without the one-entry
//!   cache (§IV-C's amortisation claim).
//!
//! Self-contained timing harness (`harness = false`, no external crates).

use arbalest_bench::make_tool;
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 4096;

fn saxpy(rt: &Runtime) -> f64 {
    let x = rt.alloc_with::<f64>("x", N, |i| i as f64);
    let y = rt.alloc_with::<f64>("y", N, |_| 1.0);
    rt.target().map(Map::to(&x)).map(Map::tofrom(&y)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = 2.0 * k.read(&x, i) + k.read(&y, i);
            k.write(&y, i, v);
        });
    });
    rt.read(&y, N - 1)
}

/// Run `f` under warm-up + measurement and print ms/iter.
fn bench(name: &str, mut f: impl FnMut() -> f64) {
    let warmup = Duration::from_millis(300);
    let measure = Duration::from_secs(2);
    let start = Instant::now();
    while start.elapsed() < warmup {
        std::hint::black_box(f());
    }
    let mut iters = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < measure {
        std::hint::black_box(f());
        iters += 1;
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("saxpy_4k/{name:<20} {ms:>9.3} ms/iter  ({iters} iters)");
}

fn main() {
    bench("native", || saxpy(&Runtime::new(Config::default().team_size(2))));
    for tool in ["arbalest", "archer", "asan", "msan", "memcheck"] {
        bench(tool, || {
            let rt = Runtime::with_tool(Config::default().team_size(2), make_tool(tool));
            saxpy(&rt)
        });
    }
    bench("arbalest_no_races", || {
        let tool = Arc::new(Arbalest::new(ArbalestConfig {
            check_races: false,
            ..Default::default()
        }));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool);
        saxpy(&rt)
    });
    bench("arbalest_no_cache", || {
        let tool = Arc::new(Arbalest::new(ArbalestConfig {
            lookup_cache: false,
            ..Default::default()
        }));
        let rt = Runtime::with_tool(Config::default().team_size(2), tool);
        saxpy(&rt)
    });
}
