//! Micro-benchmarks backing the paper's complexity claims (§IV-C):
//!
//! * `vsm_transition` — the per-access state transition is O(1).
//! * `shadow_cas`     — one lock-free shadow update per access.
//! * `interval_stab`  — CV→OV lookup is O(log m): sweep the number of
//!   mapped sections m and observe the flat/logarithmic curve.
//! * `word_codec`     — Table II encode/decode round-trip.
//! * `race_check`     — the FastTrack epoch comparison on the hot path.

use arbalest_core::vsm::{self, StorageLoc, VsmOp};
use arbalest_race::RaceEngine;
use arbalest_shadow::{GranuleState, IntervalTree, Layout, ShadowMemory};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_vsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("vsm_transition");
    let states = [
        GranuleState::default(),
        GranuleState { valid_mask: 1, init_mask: 1, ..Default::default() },
        GranuleState { valid_mask: 2, init_mask: 2, ..Default::default() },
        GranuleState { valid_mask: 3, init_mask: 3, ..Default::default() },
    ];
    group.bench_function("write_host", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = states[i & 3];
            i += 1;
            black_box(vsm::apply(s, VsmOp::Write(StorageLoc::Host)))
        })
    });
    group.bench_function("read_device_checked", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = states[i & 3];
            i += 1;
            black_box(vsm::apply(s, VsmOp::Read(StorageLoc::Device(1))))
        })
    });
    group.finish();
}

fn bench_shadow(c: &mut Criterion) {
    let shadow = ShadowMemory::new(1);
    let layout = Layout::TableII;
    c.bench_function("shadow_cas_update", |b| {
        let mut addr = 0x1000u64;
        b.iter(|| {
            addr = addr.wrapping_add(8) & 0xFFFF;
            shadow.update(0x10000 + addr, 0, |w| {
                let s = layout.decode(w);
                let (next, _) = vsm::apply(s, VsmOp::Write(StorageLoc::Host));
                layout.encode(next)
            })
        })
    });
}

fn bench_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_stab");
    for m in [1usize, 8, 64, 512, 4096] {
        let mut tree = IntervalTree::new();
        for i in 0..m as u64 {
            tree.insert(i * 1024, i * 1024 + 512, i);
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % m as u64;
                black_box(tree.stab(i * 1024 + 256))
            })
        });
    }
    group.finish();
}

fn bench_word(c: &mut Criterion) {
    let layout = Layout::TableII;
    let s = GranuleState {
        valid_mask: 0b11,
        init_mask: 0b11,
        tid: 42,
        clock: 123456,
        is_write: true,
        access_size: 8,
        addr_offset: 0,
    };
    c.bench_function("word_codec_roundtrip", |b| {
        b.iter(|| black_box(layout.decode(layout.encode(black_box(s)))))
    });
}

fn bench_race(c: &mut Criterion) {
    let engine = RaceEngine::new();
    engine.fork(0, 1);
    c.bench_function("race_check_write", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(8) & 0xFFFF;
            black_box(engine.check_write(1, 0x40000 + addr, 8))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_vsm, bench_shadow, bench_interval, bench_word, bench_race
}
criterion_main!(benches);
