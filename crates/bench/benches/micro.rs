//! Micro-benchmarks backing the paper's complexity claims (§IV-C):
//!
//! * `vsm_transition` — the per-access state transition is O(1).
//! * `shadow_cas`     — one lock-free shadow update per access.
//! * `interval_stab`  — CV→OV lookup is O(log m): sweep the number of
//!   mapped sections m and observe the flat/logarithmic curve.
//! * `word_codec`     — Table II encode/decode round-trip.
//! * `race_check`     — the FastTrack epoch comparison on the hot path.
//!
//! Self-contained timing harness (`harness = false`, no external crates):
//! each benchmark runs a short warm-up, then timed batches, and prints
//! the per-iteration latency in nanoseconds.

use arbalest_core::vsm::{self, StorageLoc, VsmOp};
use arbalest_race::RaceEngine;
use arbalest_shadow::{GranuleState, IntervalTree, Layout, ShadowMemory};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Run `f` under warm-up + measurement and print ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    let warmup = Duration::from_millis(200);
    let measure = Duration::from_millis(800);
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < warmup {
        f();
        iters += 1;
    }
    // Size batches off the warm-up rate so clock reads stay negligible.
    let batch = (iters / 20).max(1);
    let mut total_iters = 0u64;
    let mut elapsed = Duration::ZERO;
    while elapsed < measure {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        elapsed += t0.elapsed();
        total_iters += batch;
    }
    let ns = elapsed.as_nanos() as f64 / total_iters as f64;
    println!("{name:<40} {ns:>10.1} ns/iter  ({total_iters} iters)");
}

fn bench_vsm() {
    let states = [
        GranuleState::default(),
        GranuleState { valid_mask: 1, init_mask: 1, ..Default::default() },
        GranuleState { valid_mask: 2, init_mask: 2, ..Default::default() },
        GranuleState { valid_mask: 3, init_mask: 3, ..Default::default() },
    ];
    let mut i = 0usize;
    bench("vsm_transition/write_host", || {
        let s = states[i & 3];
        i += 1;
        black_box(vsm::apply(s, VsmOp::Write(StorageLoc::Host)));
    });
    let mut i = 0usize;
    bench("vsm_transition/read_device_checked", || {
        let s = states[i & 3];
        i += 1;
        black_box(vsm::apply(s, VsmOp::Read(StorageLoc::Device(1))));
    });
}

fn bench_shadow() {
    let shadow = ShadowMemory::new(1);
    let layout = Layout::TableII;
    let mut addr = 0x1000u64;
    bench("shadow_cas_update", || {
        addr = addr.wrapping_add(8) & 0xFFFF;
        shadow.update(0x10000 + addr, 0, |w| {
            let s = layout.decode(w);
            let (next, _) = vsm::apply(s, VsmOp::Write(StorageLoc::Host));
            layout.encode(next)
        });
    });
}

fn bench_interval() {
    for m in [1usize, 8, 64, 512, 4096] {
        let mut tree = IntervalTree::new();
        for i in 0..m as u64 {
            tree.insert(i * 1024, i * 1024 + 512, i);
        }
        let mut i = 0u64;
        bench(&format!("interval_stab/{m}"), || {
            i = (i + 7919) % m as u64;
            black_box(tree.stab(i * 1024 + 256));
        });
    }
}

fn bench_word() {
    let layout = Layout::TableII;
    let s = GranuleState {
        valid_mask: 0b11,
        init_mask: 0b11,
        tid: 42,
        clock: 123456,
        is_write: true,
        access_size: 8,
        addr_offset: 0,
    };
    bench("word_codec_roundtrip", || {
        black_box(layout.decode(layout.encode(black_box(s))));
    });
}

fn bench_race() {
    let engine = RaceEngine::new();
    engine.fork(0, 1);
    let mut addr = 0u64;
    bench("race_check_write", || {
        addr = addr.wrapping_add(8) & 0xFFFF;
        black_box(engine.check_write(1, 0x40000 + addr, 8));
    });
}

fn main() {
    bench_vsm();
    bench_shadow();
    bench_interval();
    bench_word();
    bench_race();
}
