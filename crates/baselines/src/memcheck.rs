//! The Valgrind memcheck model: addressability (A) bits, validity (V)
//! bits, and dynamic *binary* instrumentation semantics.
//!
//! Memcheck observes the program at the binary level. Consequences, each
//! mirrored here and each load-bearing for its Table III column:
//!
//! * It sees host heap blocks and the runtime's transfer memcpys, so an
//!   array section that walks outside an original variable during a
//!   transfer is an invalid read/write — the six BO benchmarks. ✓
//! * The device plugin of the era it ran against (LLVM 9) serves CV
//!   storage from a pooled, zero-initialised arena. One big defined
//!   mapping: kernel-side uninitialised CVs are invisible, and memcheck's
//!   V-bit machinery does not model the plugin's transfer path into that
//!   arena ("did not precisely model the semantics of all OpenMP
//!   constructs due to the lack of OMPT", §VI-C). UUM benchmarks missed. ✓
//! * Valgrind serialises the program onto one thread and interprets it;
//!   the model takes a global lock per event and performs the
//!   corresponding shadow work, reproducing the characteristic slowdown
//!   shape of Fig. 8.

use crate::sink::ReportSink;
use arbalest_offload::addr::DeviceId;
use arbalest_offload::buffer::BufferInfo;
use arbalest_offload::events::{AccessEvent, DataOpEvent, DataOpKind, Tool, TransferEvent};
use arbalest_offload::report::{Report, ReportKind};
use arbalest_shadow::ShadowMemory;
use arbalest_sync::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct ABlock {
    start: u64,
    len: u64,
    live: bool,
}

#[derive(Default)]
struct State {
    /// Host heap blocks (A bits).
    host_blocks: BTreeMap<u64, ABlock>,
    /// Device pool regions, per device window (A bits, defined V bits).
    pools: Vec<(u64, u64)>,
    /// Individually visible CV blocks (non-pooled plugins only).
    cv_blocks: BTreeMap<u64, ABlock>,
}

/// The memcheck model.
pub struct Memcheck {
    /// Valgrind executes the client single-threaded: one big lock.
    state: Mutex<State>,
    /// V bits: bit set ⇒ byte undefined.
    vbits: ShadowMemory,
    sink: ReportSink,
}

impl Default for Memcheck {
    fn default() -> Self {
        Memcheck::new()
    }
}

impl Memcheck {
    /// Create the detector.
    pub fn new() -> Memcheck {
        Memcheck {
            state: Mutex::new(State::default()),
            vbits: ShadowMemory::new(1),
            sink: ReportSink::new("memcheck", 1024),
        }
    }

    /// Addressability of one address under the current A bits.
    fn addressable(state: &State, device: DeviceId, addr: u64) -> Result<(), ReportKind> {
        if device.is_host() || arbalest_offload::addr::device_of(addr).is_host() {
            if let Some((_, b)) = state.host_blocks.range(..=addr).next_back() {
                if addr < b.start + b.len {
                    return if b.live { Ok(()) } else { Err(ReportKind::UseAfterFree) };
                }
            }
            return Err(ReportKind::HeapOverflow);
        }
        for (base, len) in &state.pools {
            if addr >= *base && addr < base + len {
                return Ok(());
            }
        }
        if let Some((_, b)) = state.cv_blocks.range(..=addr).next_back() {
            if addr < b.start + b.len {
                return if b.live { Ok(()) } else { Err(ReportKind::UseAfterFree) };
            }
        }
        Err(ReportKind::HeapOverflow)
    }

    fn check_range(
        &self,
        state: &State,
        device: DeviceId,
        addr: u64,
        len: u64,
        what: &str,
    ) {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            if let Err(kind) = Self::addressable(state, device, a) {
                self.sink.push(
                    kind,
                    format!("invalid {what} of {} bytes at {:#x}", len, a),
                    None,
                    device,
                    a,
                    1,
                    None,
                );
                return;
            }
            a += 8;
        }
        if end > addr {
            if let Err(kind) = Self::addressable(state, device, end - 1) {
                self.sink.push(
                    kind,
                    format!("invalid {what} of {} bytes at {:#x}", len, end - 1),
                    None,
                    device,
                    end - 1,
                    1,
                    None,
                );
            }
        }
    }

    #[inline]
    fn byte_mask(addr: u64, size: usize) -> u64 {
        let lo = (addr & 7) as u32;
        (((1u64 << size) - 1) << lo) & 0xFF
    }

    /// Emulate dynamic binary translation: Valgrind executes tens of
    /// translated instructions (V-bit ALU propagation) for every client
    /// instruction, on a single serialised thread. We charge that cost
    /// here, under the global lock, per observed memory access — the
    /// client instructions *between* accesses are invisible to the event
    /// stream, so their interpretation cost is folded in. The constant is
    /// calibrated to land in memcheck's documented 10–50× band.
    #[inline]
    fn interpret_instruction_window(&self) {
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..MemcheckDbi::WORK {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ i;
        }
        std::hint::black_box(x);
    }
}

/// Tuning knob for the DBI emulation.
struct MemcheckDbi;
impl MemcheckDbi {
    const WORK: u64 = 220;
}

impl Tool for Memcheck {
    fn name(&self) -> &'static str {
        "memcheck"
    }

    fn on_buffer_registered(&self, info: &BufferInfo) {
        let mut state = self.state.lock();
        state.host_blocks.insert(
            info.ov_base,
            ABlock { start: info.ov_base, len: info.byte_len().max(8), live: true },
        );
        drop(state);
        // malloc'd memory is undefined.
        self.vbits.update_range(info.ov_base, info.byte_len().max(8), 0, |_| 0xFF);
    }

    fn on_host_free(&self, info: &BufferInfo) {
        let mut state = self.state.lock();
        if let Some(b) = state.host_blocks.get_mut(&info.ov_base) {
            b.live = false;
        }
    }

    fn on_pool_alloc(&self, _device: DeviceId, base: u64, len: u64) {
        // The plugin's arena: one zero-initialised (defined) mapping.
        self.state.lock().pools.push((base, len));
    }

    fn on_data_op(&self, ev: &DataOpEvent) {
        if !ev.plugin_visible {
            return; // pooled: the per-CV operation is invisible at binary level
        }
        let mut state = self.state.lock();
        match ev.kind {
            DataOpKind::CvAlloc => {
                state.cv_blocks.insert(ev.cv_base, ABlock { start: ev.cv_base, len: ev.len, live: true });
                drop(state);
                self.vbits.update_range(ev.cv_base, ev.len, 0, |_| 0xFF);
            }
            DataOpKind::CvDelete => {
                if let Some(b) = state.cv_blocks.get_mut(&ev.cv_base) {
                    b.live = false;
                }
            }
        }
    }

    fn on_transfer(&self, ev: &TransferEvent) {
        if ev.unified {
            return;
        }
        let state = self.state.lock();
        self.check_range(&state, ev.src_device, ev.src_addr, ev.len, "read");
        self.check_range(&state, ev.dst_device, ev.dst_addr, ev.len, "write");
        drop(state);
        // V-bit propagation. Copies *from* the device arena make the
        // destination defined (the arena is a defined mapping); memcheck
        // does not model the plugin's path *into* the arena, so the arena
        // stays defined regardless of the source — unless the plugin
        // exposes individual CV blocks (non-pooled ablation), where the
        // intercepted memcpy propagates shadow faithfully.
        let dst_is_pooled_device = {
            let state = self.state.lock();
            !ev.dst_device.is_host()
                && state.pools.iter().any(|(b, l)| ev.dst_addr >= *b && ev.dst_addr < b + l)
        };
        if dst_is_pooled_device {
            return;
        }
        let granules = ev.len.div_ceil(8);
        for g in 0..granules {
            let v = self.vbits.load(ev.src_addr + g * 8, 0);
            self.vbits.store(ev.dst_addr + g * 8, 0, v);
        }
    }

    fn on_access(&self, ev: &AccessEvent) {
        // Serialised, interpreted execution.
        let state = self.state.lock();
        self.interpret_instruction_window();
        if let Err(kind) = Self::addressable(&state, ev.device, ev.addr) {
            self.sink.push(
                kind,
                format!(
                    "invalid {} of size {}",
                    if ev.is_write { "write" } else { "read" },
                    ev.size
                ),
                None,
                ev.device,
                ev.addr,
                ev.size,
                Some(ev.loc),
            );
            return;
        }
        drop(state);
        let mask = Self::byte_mask(ev.addr, ev.size);
        if ev.is_write {
            self.vbits.update(ev.addr & !7, 0, |v| v & !mask);
        } else {
            let v = self.vbits.load(ev.addr & !7, 0);
            if v & mask != 0 {
                self.sink.push(
                    ReportKind::UninitRead,
                    format!("use of uninitialised value of size {}", ev.size),
                    None,
                    ev.device,
                    ev.addr,
                    ev.size,
                    Some(ev.loc),
                );
            }
        }
    }

    fn reports(&self) -> Vec<Report> {
        self.sink.all()
    }

    fn side_table_bytes(&self) -> u64 {
        // memcheck keeps A+V bits: 2 shadow bits per byte ≈ len/4 over
        // tracked extents, plus our resident shadow pages.
        self.vbits.resident_bytes() / 4 + 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use std::sync::Arc;

    fn harness() -> (Runtime, Arc<Memcheck>) {
        let tool = Arc::new(Memcheck::new());
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        (rt, tool)
    }

    #[test]
    fn transfer_overflow_is_invalid_read() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        rt.target().map(Map::to_section(&a, 0, 12)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let _ = k.read(&a, i);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::HeapOverflow));
    }

    #[test]
    fn pooled_plugin_hides_kernel_uum() {
        // Fig. 1: the uninitialised CV lives in the defined arena.
        let (rt, tool) = harness();
        let b = rt.alloc_with::<f64>("b", 8, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 8, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&b, i);
                k.write(&c, i, v);
            });
        });
        let _ = rt.read(&c, 0);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn non_pooled_plugin_reveals_kernel_uum() {
        // Ablation: with per-CV mallocs visible (the LLVM 11 plugin
        // shape), the same benchmark IS caught — this is why MSan's
        // column differs from Valgrind's.
        let tool = Arc::new(Memcheck::new());
        let rt = Runtime::with_tool(Config::default().pooled(false), tool.clone());
        let b = rt.alloc_with::<f64>("b", 8, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 8, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&b, i);
                k.write(&c, i, v);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead));
    }

    #[test]
    fn blind_to_usd() {
        let (rt, tool) = harness();
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _ = rt.read(&a, 0);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn host_uninit_read_detected() {
        let (rt, tool) = harness();
        let a = rt.alloc::<f64>("a", 8);
        let _ = rt.read(&a, 3);
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead));
    }

    #[test]
    fn unmapped_kernel_access_is_unaddressable() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        let b = rt.alloc_with::<f64>("b", 8, |_| 0.0);
        rt.target().map(Map::tofrom(&b)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i); // never mapped: wild device read
                k.write(&b, i, v);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::HeapOverflow));
    }

    #[test]
    fn use_after_free_detected() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<i64>("a", 4, |_| 1);
        rt.free(&a);
        let _ = rt.read(&a, 0);
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UseAfterFree));
    }

    #[test]
    fn clean_program_is_silent() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 32, |i| i as f64);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.par_for(0..32, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, 2.0 * v);
            });
        });
        for i in 0..32 {
            assert_eq!(rt.read(&a, i), 2.0 * i as f64);
        }
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }
}
