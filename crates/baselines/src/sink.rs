//! Shared report sink with per-site deduplication, used by every baseline.

use arbalest_offload::events::SrcLoc;
use arbalest_offload::report::{hints, Report, ReportKind};
use arbalest_sync::Mutex;
use std::collections::HashSet;

/// Deduplication key: (kind, buffer, file, line).
type ReportKey = (ReportKind, Option<String>, &'static str, u32);

pub(crate) struct ReportSink {
    tool: &'static str,
    max: usize,
    reports: Mutex<Vec<Report>>,
    seen: Mutex<HashSet<ReportKey>>,
}

impl ReportSink {
    pub(crate) fn new(tool: &'static str, max: usize) -> Self {
        ReportSink { tool, max, reports: Mutex::new(Vec::new()), seen: Mutex::new(HashSet::new()) }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push(
        &self,
        kind: ReportKind,
        message: String,
        buffer: Option<String>,
        device: arbalest_offload::addr::DeviceId,
        addr: u64,
        size: usize,
        loc: Option<SrcLoc>,
    ) {
        let key = (
            kind,
            buffer.clone(),
            loc.map(|l| l.file).unwrap_or(""),
            loc.map(|l| l.line).unwrap_or(0),
        );
        let mut seen = self.seen.lock();
        if seen.len() >= self.max || !seen.insert(key) {
            return;
        }
        drop(seen);
        self.reports.lock().push(Report {
            tool: self.tool,
            kind,
            message,
            buffer,
            device,
            addr,
            size,
            loc,
            prev: None,
            // Baselines have no mapping context of their own; attach the
            // kind's default hint so no report ships without one.
            suggested_fix: Some(hints::default_for(kind, device).to_string()),
            provenance: Vec::new(),
        });
    }

    pub(crate) fn all(&self) -> Vec<Report> {
        self.reports.lock().clone()
    }
}
