//! The Archer model: FastTrack happens-before race detection with OpenMP
//! synchronization semantics (via the OMPT-analogue sync events), but no
//! model of OV/CV consistency. This is the real Archer's position in the
//! evaluation: excellent at races, blind to every data mapping issue that
//! does not manifest as one (0/16 in Table III).

use crate::sink::ReportSink;
use arbalest_offload::buffer::BufferInfo;
use arbalest_offload::events::{AccessEvent, SyncEvent, Tool, TransferEvent};
use arbalest_offload::report::{Report, ReportKind};
use arbalest_race::RaceEngine;
use arbalest_sync::RwLock;
use std::collections::HashMap;

/// The Archer data race detector model.
pub struct Archer {
    engine: RaceEngine,
    sink: ReportSink,
    buffers: RwLock<HashMap<u32, BufferInfo>>,
}

impl Default for Archer {
    fn default() -> Self {
        Archer::new()
    }
}

impl Archer {
    /// Create the detector.
    pub fn new() -> Archer {
        Archer {
            engine: RaceEngine::new(),
            sink: ReportSink::new("archer", 1024),
            buffers: RwLock::new(HashMap::new()),
        }
    }

    fn name_of(&self, buffer: Option<arbalest_offload::buffer::BufferId>) -> Option<String> {
        buffer.and_then(|b| self.buffers.read().get(&b.0).map(|i| i.name.clone()))
    }
}

impl Tool for Archer {
    fn name(&self) -> &'static str {
        "archer"
    }

    fn on_buffer_registered(&self, info: &BufferInfo) {
        self.buffers.write().insert(info.id.0, info.clone());
    }

    fn on_access(&self, ev: &AccessEvent) {
        if ev.atomic {
            return; // TSan treats atomics as synchronisation, not data accesses
        }
        let race = if ev.is_write {
            self.engine.check_write(ev.task.0, ev.addr, ev.size as u8)
        } else {
            self.engine.check_read(ev.task.0, ev.addr, ev.size as u8)
        };
        if let Some(r) = race {
            self.sink.push(
                ReportKind::DataRace,
                format!(
                    "{} races with previous {} by T{}",
                    if ev.is_write { "write" } else { "read" },
                    if r.prev_was_write { "write" } else { "read" },
                    r.prev_tid
                ),
                self.name_of(ev.buffer),
                ev.device,
                ev.addr,
                ev.size,
                Some(ev.loc),
            );
        }
    }

    fn on_transfer(&self, ev: &TransferEvent) {
        if ev.unified {
            return;
        }
        // The runtime's memcpy is an ordinary read/write pair on the
        // transferring thread from TSan's perspective.
        let read = self.engine.check_read_range(ev.task.0, ev.src_addr, ev.len);
        let write = self.engine.check_write_range(ev.task.0, ev.dst_addr, ev.len);
        if let Some(r) = read.or(write) {
            self.sink.push(
                ReportKind::DataRace,
                format!(
                    "runtime memcpy races with previous {} by T{}",
                    if r.prev_was_write { "write" } else { "read" },
                    r.prev_tid
                ),
                self.name_of(Some(ev.buffer)),
                ev.dst_device,
                ev.dst_addr,
                ev.len as usize,
                None,
            );
        }
    }

    fn on_sync(&self, ev: &SyncEvent) {
        match ev {
            SyncEvent::TaskCreate { parent, child } => self.engine.fork(parent.0, child.0),
            SyncEvent::TaskEnd { task } => self.engine.end(task.0),
            SyncEvent::TaskJoin { waiter, joined } => self.engine.join(waiter.0, joined.0),
            SyncEvent::Acquire { task, lock } => self.engine.acquire(task.0, *lock),
            SyncEvent::Release { task, lock } => self.engine.release(task.0, *lock),
        }
    }

    fn reports(&self) -> Vec<Report> {
        self.sink.all()
    }

    fn side_table_bytes(&self) -> u64 {
        self.engine.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use std::sync::Arc;

    #[test]
    fn detects_intra_kernel_race() {
        let tool = Arc::new(Archer::new());
        let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
        let a = rt.alloc_with::<i64>("a", 1, |_| 0);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            // Every team thread increments a[0]: classic racy reduction.
            k.par_for(0..64, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::DataRace));
    }

    #[test]
    fn silent_on_clean_parallel_kernel() {
        let tool = Arc::new(Archer::new());
        let rt = Runtime::with_tool(Config::default().team_size(4), tool.clone());
        let a = rt.alloc_with::<i64>("a", 64, |_| 1);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.par_for(0..64, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 2);
            });
        });
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn blind_to_mapping_issues() {
        // The Fig. 1 UUM: Archer sees no race, reports nothing.
        let tool = Arc::new(Archer::new());
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        let b = rt.alloc_with::<f64>("b", 16, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 16, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..16, |k, i| {
                let v = k.read(&b, i);
                k.write(&c, i, v);
            });
        });
        let _ = rt.read(&c, 0);
        assert!(tool.reports().is_empty());
    }

    #[test]
    fn detects_nowait_exit_transfer_race() {
        let tool = Arc::new(Archer::new());
        let rt = Runtime::with_tool(Config::default().serialize(true), tool.clone());
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
            rt.target().nowait().run(move |k| {
                k.for_each(0..1, |k, _| k.write(&a, 0, 3));
            });
            rt.write(&a, 0, 9);
        });
        rt.taskwait();
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::DataRace));
    }
}
