//! # arbalest-baselines
//!
//! Faithful models of the four dynamic analysis tools ARBALEST is
//! compared against in §VI: Valgrind's memcheck, Archer, AddressSanitizer
//! and MemorySanitizer.
//!
//! Each model implements the published detection *algorithm* of its tool
//! (A/V bits, FastTrack happens-before, red zones, definedness
//! propagation) over the same event stream ARBALEST consumes, with the
//! observability each real tool has:
//!
//! * **memcheck** is binary-level instrumentation: it sees host heap
//!   blocks and the runtime's transfer memcpys, but the device plugin's
//!   pooled arena looks like one big zero-initialised (hence *defined*)
//!   mapping — so kernel-side uninitialised CVs are invisible to it.
//!   Like the real Valgrind it serialises execution (a global lock).
//! * **archer** is pure happens-before race detection with OpenMP sync
//!   knowledge but no OV/CV consistency model.
//! * **asan** red-zones *host* allocations only (the device plugin's
//!   memory is not ASan heap), so it catches transfers that walk out of
//!   an original variable but nothing on the device side.
//! * **msan** tracks byte definedness with propagation through the
//!   allocator- and memcpy-interception it has on the host toolchain; a
//!   `target update` staged through a runtime-internal buffer launders
//!   shadow — the "imprecise modelling of OpenMP constructs due to the
//!   lack of OMPT" the paper cites for the benchmark it misses.
//!
//! Together these blind spots are what Table III measures.

#![warn(missing_docs)]

pub mod archer;
pub mod asan;
pub mod memcheck;
pub mod msan;
mod sink;

pub use archer::Archer;
pub use asan::AddressSanitizer;
pub use memcheck::Memcheck;
pub use msan::MemorySanitizer;
