//! The MemorySanitizer model: byte-granular definedness (poison) shadow
//! with propagation through writes and intercepted memcpys.
//!
//! MSan is compile-time instrumentation on the whole toolchain, so unlike
//! Valgrind it observes the per-CV allocations the device plugin makes
//! (they are poisoned like any fresh allocation) and the map-construct
//! transfer memcpys (shadow is copied). Two blind spots shape its
//! Table III column:
//!
//! * definedness says nothing about *staleness* (USD benchmarks) or
//!   *addresses* (BO benchmarks — the overflowing access lands in defined
//!   neighbouring data);
//! * a transfer staged through a runtime-internal buffer exits MSan's
//!   interception, so the destination is conservatively marked defined —
//!   shadow is laundered. This reproduces the benchmark the paper
//!   explains with "MSan ... did not precisely model the semantics of all
//!   OpenMP constructs due to the lack of OMPT".

use crate::sink::ReportSink;
use arbalest_offload::buffer::BufferInfo;
use arbalest_offload::events::{AccessEvent, DataOpEvent, DataOpKind, Tool, TransferEvent};
use arbalest_offload::report::{Report, ReportKind};
use arbalest_shadow::ShadowMemory;
use arbalest_sync::RwLock;
use std::collections::HashMap;

/// Per-granule shadow: bit `i` set ⇒ byte `i` is poisoned (uninitialised).
pub struct MemorySanitizer {
    poison: ShadowMemory,
    buffers: RwLock<HashMap<u32, BufferInfo>>,
    sink: ReportSink,
}

impl Default for MemorySanitizer {
    fn default() -> Self {
        MemorySanitizer::new()
    }
}

#[inline]
fn byte_mask(addr: u64, size: usize) -> u64 {
    let lo = (addr & 7) as u32;
    (((1u64 << size) - 1) << lo) & 0xFF
}

impl MemorySanitizer {
    /// Create the detector.
    pub fn new() -> MemorySanitizer {
        MemorySanitizer {
            poison: ShadowMemory::new(1),
            buffers: RwLock::new(HashMap::new()),
            sink: ReportSink::new("msan", 1024),
        }
    }

    fn poison_range(&self, addr: u64, len: u64) {
        self.poison.update_range(addr, len, 0, |_| 0xFF);
    }

    fn unpoison_range(&self, addr: u64, len: u64) {
        self.poison.update_range(addr, len, 0, |_| 0);
    }

    fn name_of(&self, buffer: Option<arbalest_offload::buffer::BufferId>) -> Option<String> {
        buffer.and_then(|b| self.buffers.read().get(&b.0).map(|i| i.name.clone()))
    }
}

impl Tool for MemorySanitizer {
    fn name(&self) -> &'static str {
        "msan"
    }

    fn on_buffer_registered(&self, info: &BufferInfo) {
        self.buffers.write().insert(info.id.0, info.clone());
        // Fresh allocation: fully poisoned.
        self.poison_range(info.ov_base, info.byte_len().max(8));
    }

    fn on_data_op(&self, ev: &DataOpEvent) {
        // The plugin's data_alloc goes through the instrumented
        // allocator, pooled or not — MSan is compile-time instrumentation
        // on the whole toolchain, so fresh CVs are poison either way.
        // (Deletes need no action — the bump allocator never reuses.)
        if ev.kind == DataOpKind::CvAlloc {
            self.poison_range(ev.cv_base, ev.len);
        }
    }

    fn on_transfer(&self, ev: &TransferEvent) {
        if ev.unified {
            return;
        }
        if ev.staged {
            // The copy detoured through uninstrumented runtime code; the
            // interceptor only sees a write of "initialised" bytes.
            self.unpoison_range(ev.dst_addr, ev.len);
        } else {
            // memcpy interception: copy the shadow.
            let granules = ev.len.div_ceil(8);
            for g in 0..granules {
                let v = self.poison.load(ev.src_addr + g * 8, 0);
                self.poison.store(ev.dst_addr + g * 8, 0, v);
            }
        }
    }

    fn on_access(&self, ev: &AccessEvent) {
        if ev.is_write {
            // Writing defines the bytes.
            let mask = byte_mask(ev.addr, ev.size);
            self.poison.update(ev.addr & !7, 0, |v| v & !mask);
            return;
        }
        let mask = byte_mask(ev.addr, ev.size);
        let shadow = self.poison.load(ev.addr & !7, 0);
        if shadow & mask != 0 {
            self.sink.push(
                ReportKind::UninitRead,
                format!(
                    "use-of-uninitialized-value: {}-byte read of poisoned memory",
                    ev.size
                ),
                self.name_of(ev.buffer),
                ev.device,
                ev.addr,
                ev.size,
                Some(ev.loc),
            );
        }
    }

    fn reports(&self) -> Vec<Report> {
        self.sink.all()
    }

    fn side_table_bytes(&self) -> u64 {
        self.poison.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use std::sync::Arc;

    fn harness() -> (Runtime, Arc<MemorySanitizer>) {
        let tool = Arc::new(MemorySanitizer::new());
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        (rt, tool)
    }

    #[test]
    fn figure1_uum_detected() {
        let (rt, tool) = harness();
        let b = rt.alloc_with::<f64>("b", 8, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 8, |_| 0.0);
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&b, i); // poisoned CV
                k.write(&c, i, v);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead));
    }

    #[test]
    fn to_mapped_data_is_defined_on_device() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |i| i as f64);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        let _ = rt.read(&a, 0);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn blind_to_usd() {
        let (rt, tool) = harness();
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let v = k.read(&a, 0);
                k.write(&a, 0, v + 1);
            });
        });
        let _ = rt.read(&a, 0); // stale but defined
        assert!(tool.reports().is_empty());
    }

    #[test]
    fn blind_to_device_overflow_into_defined_neighbour() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        let b = rt.alloc_with::<f64>("b", 8, |_| 2.0);
        rt.target().map(Map::to(&a)).map(Map::to(&b)).run(move |k| {
            k.for_each(0..1, |k, _| {
                // Reads past a's CV land in the inter-block gap / b's CV;
                // gap bytes were never poisoned (only allocations are).
                let _ = k.read(&a, 9);
            });
        });
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn staged_update_launders_shadow() {
        // An uninitialised OV pushed with `target update to` (staged):
        // the CV wrongly becomes defined — MSan misses the kernel UUM.
        let (rt, tool) = harness();
        let a = rt.alloc::<f64>("a", 8); // never initialised
        rt.target_data().map(Map::alloc(&a)).scope(|rt| {
            rt.update_to(&a); // staged by default
            rt.target().map(Map::alloc(&a)).run(move |k| {
                k.for_each(0..8, |k, i| {
                    let _ = k.read(&a, i); // real UUM, missed by MSan
                });
            });
        });
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn unstaged_update_preserves_shadow() {
        // Ablation: with staging off the same program IS caught.
        let tool = Arc::new(MemorySanitizer::new());
        let rt = Runtime::with_tool(Config::default().staged_updates(false), tool.clone());
        let a = rt.alloc::<f64>("a", 8);
        rt.target_data().map(Map::alloc(&a)).scope(|rt| {
            rt.update_to(&a);
            rt.target().map(Map::alloc(&a)).run(move |k| {
                k.for_each(0..8, |k, i| {
                    let _ = k.read(&a, i);
                });
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead));
    }

    #[test]
    fn from_map_copy_back_of_poison_then_host_read_detected() {
        let (rt, tool) = harness();
        let a = rt.alloc::<f64>("a", 8);
        // from-map a CV nobody writes: poison copied back to the OV.
        rt.target().map(Map::from(&a)).run(move |_k| {});
        let _ = rt.read(&a, 0);
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UninitRead));
    }
}
