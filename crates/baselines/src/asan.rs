//! The AddressSanitizer model: red zones around *host* heap allocations,
//! poison-on-free, and memcpy interception.
//!
//! ASan is compile-time instrumentation plus a runtime allocator. In an
//! offloading program only host allocations go through ASan's allocator —
//! the device plugin manages CV memory itself — so ASan can flag
//! transfers (and host code) that walk outside an original variable, but
//! sees nothing wrong with device-side overflows or uninitialised /
//! stale data. That is exactly its Table III column: the six BO
//! benchmarks, nothing else.

use crate::sink::ReportSink;
use arbalest_offload::buffer::BufferInfo;
use arbalest_offload::events::{AccessEvent, SrcLoc, Tool, TransferEvent, TransferKind};
use arbalest_offload::report::{Report, ReportKind};
use arbalest_sync::RwLock;
use std::collections::BTreeMap;

/// Red zone size in bytes on each side of an allocation. Must not exceed
/// the runtime allocator's inter-block gap.
pub const REDZONE: u64 = 32;

#[derive(Debug, Clone, Copy)]
struct HeapBlock {
    start: u64,
    len: u64,
    name_idx: u32,
    live: bool,
}

/// The AddressSanitizer model.
pub struct AddressSanitizer {
    blocks: RwLock<BTreeMap<u64, HeapBlock>>,
    names: RwLock<Vec<String>>,
    sink: ReportSink,
}

impl Default for AddressSanitizer {
    fn default() -> Self {
        AddressSanitizer::new()
    }
}

impl AddressSanitizer {
    /// Create the detector.
    pub fn new() -> AddressSanitizer {
        AddressSanitizer {
            blocks: RwLock::new(BTreeMap::new()),
            names: RwLock::new(Vec::new()),
            sink: ReportSink::new("asan", 1024),
        }
    }

    /// Classify a host address: inside a live block (ok), inside a red
    /// zone or past a block (overflow), or inside a freed block (UAF).
    fn classify(&self, addr: u64) -> Option<(ReportKind, String)> {
        let blocks = self.blocks.read();
        // The nearest block at or below the address.
        if let Some((_, b)) = blocks.range(..=addr).next_back() {
            if addr < b.start + b.len {
                if b.live {
                    return None;
                }
                let name = self.names.read()[b.name_idx as usize].clone();
                return Some((
                    ReportKind::UseAfterFree,
                    format!("access to freed allocation '{name}'"),
                ));
            }
            if addr < b.start + b.len + REDZONE {
                let name = self.names.read()[b.name_idx as usize].clone();
                return Some((
                    ReportKind::HeapOverflow,
                    format!("heap-buffer-overflow past the end of '{name}'"),
                ));
            }
        }
        // Left red zone of the next block above.
        if let Some((_, b)) = blocks.range(addr..).next() {
            if addr + REDZONE >= b.start && addr < b.start {
                let name = self.names.read()[b.name_idx as usize].clone();
                return Some((
                    ReportKind::HeapOverflow,
                    format!("heap-buffer-overflow before the start of '{name}'"),
                ));
            }
        }
        None
    }

    fn check_host_range(
        &self,
        addr: u64,
        len: u64,
        device: arbalest_offload::addr::DeviceId,
        buffer: Option<String>,
        loc: Option<SrcLoc>,
    ) {
        // Checking the first and last byte of each granule is enough for
        // red-zone shaped violations.
        let mut a = addr;
        let end = addr + len;
        while a < end {
            if let Some((kind, msg)) = self.classify(a) {
                self.sink.push(kind, msg, buffer.clone(), device, a, 1, loc);
                return;
            }
            a += 8;
        }
        if end > addr {
            if let Some((kind, msg)) = self.classify(end - 1) {
                self.sink.push(kind, msg, buffer, device, end - 1, 1, loc);
            }
        }
    }
}

impl Tool for AddressSanitizer {
    fn name(&self) -> &'static str {
        "asan"
    }

    fn on_buffer_registered(&self, info: &BufferInfo) {
        let mut names = self.names.write();
        let idx = names.len() as u32;
        names.push(info.name.clone());
        drop(names);
        self.blocks.write().insert(
            info.ov_base,
            HeapBlock { start: info.ov_base, len: info.byte_len().max(8), name_idx: idx, live: true },
        );
    }

    fn on_host_free(&self, info: &BufferInfo) {
        if let Some(b) = self.blocks.write().get_mut(&info.ov_base) {
            b.live = false;
        }
    }

    fn on_access(&self, ev: &AccessEvent) {
        // Only host memory is ASan heap; device accesses hit plugin
        // memory whose shadow is unpoisoned.
        if !ev.device.is_host() {
            return;
        }
        if let Some((kind, msg)) = self.classify(ev.addr) {
            self.sink.push(kind, msg, None, ev.device, ev.addr, ev.size, Some(ev.loc));
        }
    }

    fn on_transfer(&self, ev: &TransferEvent) {
        if ev.unified {
            return;
        }
        // The interceptor checks the host-side range of the memcpy;
        // device-to-device copies never touch ASan heap.
        let (host_addr, dev) = match ev.kind {
            TransferKind::ToDevice => (ev.src_addr, ev.dst_device),
            TransferKind::FromDevice => (ev.dst_addr, ev.src_device),
            TransferKind::DeviceToDevice => return,
        };
        self.check_host_range(host_addr, ev.len, dev, None, None);
    }

    fn reports(&self) -> Vec<Report> {
        self.sink.all()
    }

    fn side_table_bytes(&self) -> u64 {
        // Red-zone shadow: 1 shadow byte per 8 application bytes over the
        // blocks' extent, like real ASan.
        let blocks = self.blocks.read();
        blocks.values().map(|b| (b.len + 2 * REDZONE) / 8 + 32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_offload::prelude::*;
    use std::sync::Arc;

    fn harness() -> (Runtime, Arc<AddressSanitizer>) {
        let tool = Arc::new(AddressSanitizer::new());
        let rt = Runtime::with_tool(Config::default(), tool.clone());
        (rt, tool)
    }

    #[test]
    fn oversized_map_section_is_heap_overflow() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        rt.target().map(Map::to_section(&a, 0, 12)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let _ = k.read(&a, i);
            });
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::HeapOverflow));
    }

    #[test]
    fn copy_back_overflow_detected() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        rt.target().map(Map::from_section(&a, 0, 10)).run(move |k| {
            k.for_each(0..8, |k, i| k.write(&a, i, 1.0));
        });
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::HeapOverflow));
    }

    #[test]
    fn blind_to_uum_and_usd() {
        let (rt, tool) = harness();
        let b = rt.alloc_with::<f64>("b", 8, |_| 1.0);
        let c = rt.alloc_with::<f64>("c", 8, |_| 0.0);
        // Fig. 1 UUM.
        rt.target().map(Map::alloc(&b)).map(Map::tofrom(&c)).run(move |k| {
            k.for_each(0..8, |k, i| {
                let v = k.read(&b, i);
                k.write(&c, i, v);
            });
        });
        // Fig. 2 USD.
        let a = rt.alloc_init::<i64>("a", &[1]);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| k.write(&a, 0, 2));
        });
        let _ = rt.read(&a, 0);
        assert!(tool.reports().is_empty(), "{:?}", tool.reports());
    }

    #[test]
    fn device_side_overflow_not_seen() {
        // Kernel reads past its CV inside the plugin pool: no red zones
        // there, ASan stays silent (only ARBALEST's interval tree sees it).
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 8, |_| 1.0);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..1, |k, _| {
                let _ = k.read(&a, 10);
            });
        });
        assert!(tool.reports().is_empty());
    }

    #[test]
    fn use_after_free_detected() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<i64>("a", 4, |_| 1);
        let b = rt.alloc_with::<i64>("b", 4, |_| 1);
        rt.free(&a);
        let _ = rt.read(&b, 0); // fine
        // Reading `a` after free through the tracked path would panic in
        // the runtime's bounds logic only if unallocated; the access is
        // still tracked, so emulate via the raw event path: read is fine
        // at runtime level (memory persists) but ASan flags it.
        let _ = rt.read(&a, 0);
        assert!(tool.reports().iter().any(|r| r.kind == ReportKind::UseAfterFree));
    }

    #[test]
    fn clean_program_is_silent() {
        let (rt, tool) = harness();
        let a = rt.alloc_with::<f64>("a", 64, |i| i as f64);
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.par_for(0..64, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        for i in 0..64 {
            assert_eq!(rt.read(&a, i), i as f64 + 1.0);
        }
        assert!(tool.reports().is_empty());
    }
}
