//! Chrome trace-event JSON export, loadable in Perfetto and
//! `chrome://tracing`.
//!
//! The format is the Trace Event Format's JSON Object variant: a
//! top-level object whose `traceEvents` array holds one object per
//! event. Each completed span becomes a `ph:"X"` *complete* event —
//! start timestamp plus duration, both in microseconds — so no
//! begin/end pairing discipline is required of a lossy flight recorder
//! (a dropped begin cannot orphan an end). One `ph:"M"` metadata event
//! names the process. Trace, span, and parent ids ride in `args` as
//! fixed-width hex strings, so Perfetto's flow/args UI shows the causal
//! identity of every slice.
//!
//! Everything is hand-emitted (this crate is std-only); the output is
//! plain ASCII.

use crate::span::SpanEvent;

/// Append a JSON string literal (quotes included) with escaping.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nanoseconds rendered as a decimal microsecond timestamp (`ts`/`dur`
/// fields are microseconds in the trace-event format; fractional digits
/// keep nanosecond precision).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render drained span events as Chrome trace-event JSON.
///
/// The result is a complete, self-contained JSON document; write it to
/// a `.json` file and open it in <https://ui.perfetto.dev> or
/// `chrome://tracing`. Events are emitted in start-time order.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let pid = std::process::id();
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    // Process-name metadata event first.
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"arbalest\"}}}}"
    ));
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.start_ns);
    for e in sorted {
        out.push(',');
        out.push_str("{\"name\":");
        push_json_str(&mut out, e.name);
        out.push_str(",\"cat\":\"arbalest\",\"ph\":\"X\",\"ts\":");
        out.push_str(&micros(e.start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&micros(e.dur_ns));
        out.push_str(&format!(",\"pid\":{pid},\"tid\":{}", e.tid));
        out.push_str(&format!(
            ",\"args\":{{\"trace\":\"{:032x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}}}",
            e.trace, e.span, e.parent
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_events() -> Vec<SpanEvent> {
        let r = Registry::new();
        let root = r.span(r.span_name("root"));
        {
            let _child = r.span_child(r.span_name("child \"quoted\""), root.context());
        }
        drop(root);
        r.drain_spans()
    }

    #[test]
    fn emits_one_x_event_per_span_plus_metadata() {
        let events = sample_events();
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), events.len());
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
        // Escaping of the quoted name.
        assert!(json.contains("child \\\"quoted\\\""));
        // Every X event carries the causal ids.
        for e in &events {
            assert!(json.contains(&format!("\"span\":\"{:016x}\"", e.span)));
            assert!(json.contains(&format!("\"trace\":\"{:032x}\"", e.trace)));
        }
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn empty_drain_still_yields_a_valid_document() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
    }
}
