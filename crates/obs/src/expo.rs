//! Prometheus text-exposition (version 0.0.4) conformance checking.
//!
//! [`Snapshot::to_prometheus`](crate::Snapshot::to_prometheus) promises
//! scrape-able output; this module is the promise's teeth. The checker
//! validates structure, not values: metric and label *naming* against
//! the Prometheus grammar, label-value *escaping*, `# HELP`/`# TYPE`
//! comment shape and placement (a family's `TYPE` precedes its samples
//! and appears once), sample syntax, and histogram invariants — every
//! `_bucket` series cumulative and non-decreasing in `le` order, with
//! `+Inf` equal to `_count`. It is shared by the exporter's conformance
//! test and the `arbalest check-prom` CLI entry point that CI scrapes
//! live server output through.

use std::collections::{BTreeMap, HashSet};

/// What a successful conformance pass saw — handy for asserting a scrape
/// was non-trivial.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExpoSummary {
    /// Metric families with a `# TYPE` line.
    pub families: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Histogram families whose bucket invariants were verified.
    pub histograms: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `{k="v",...}`; returns the label pairs and the byte offset one
/// past the closing `}`. Validates escaping: only `\\`, `\"`, and `\n`
/// are legal escapes in a label value.
fn parse_labels(s: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes[0], b'{');
    let mut labels = Vec::new();
    let mut i = 1;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".into());
        }
        if bytes[i] == b'}' {
            return Ok((labels, i + 1));
        }
        // label name
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &s[name_start..i];
        if !valid_label_name(name) {
            return Err(format!("invalid label name '{name}'"));
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("label '{name}' value is not quoted"));
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated value for label '{name}'"));
            }
            match bytes[i] {
                b'"' => break,
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return Err(format!(
                                "illegal escape '\\{}' in value of label '{name}'",
                                other.map(|&b| b as char).unwrap_or('?')
                            ))
                        }
                    }
                    i += 1;
                }
                b'\n' => return Err(format!("raw newline in value of label '{name}'")),
                _ => {
                    // Multi-byte UTF-8 is legal; copy the full char.
                    let c = s[i..].chars().next().expect("in-bounds char");
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        i += 1; // closing quote
        labels.push((name.to_string(), value));
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// The family a sample name belongs to, unwrapping histogram suffixes.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validate Prometheus text-exposition output. Returns a summary of what
/// was checked, or the first conformance violation found (with its line
/// number) as an error string.
pub fn check_exposition(text: &str) -> Result<ExpoSummary, String> {
    let mut summary = ExpoSummary::default();
    // family -> declared kind ("counter" | "gauge" | "histogram" | ...)
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // histogram family -> ordered (le, labels-sans-le, cumulative count)
    #[allow(clippy::type_complexity)]
    let mut hist_buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let err = |msg: String| format!("line {n}: {msg}");
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(err(format!("TYPE declares invalid metric name '{name}'")));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(err(format!("TYPE declares unknown kind '{kind}'")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(err(format!("duplicate TYPE line for family '{name}'")));
                }
                summary.families += 1;
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(err(format!("HELP declares invalid metric name '{name}'")));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err("sample line has no value".into()))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(err(format!("invalid metric name '{name}'")));
        }
        let (labels, after) = if line.as_bytes()[name_end] == b'{' {
            let (labels, used) =
                parse_labels(&line[name_end..]).map_err(|e| err(format!("{name}: {e}")))?;
            (labels, name_end + used)
        } else {
            (Vec::new(), name_end)
        };
        let value_str = line[after..].trim();
        let value_tok = value_str.split(' ').next().unwrap_or("");
        let value: f64 = match value_tok {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| err(format!("{name}: unparsable value '{v}'")))?,
        };
        summary.samples += 1;

        // A family's TYPE must precede its samples.
        let family = family_of(name);
        let declared = types.get(family).or_else(|| types.get(name));
        let Some(kind) = declared else {
            return Err(err(format!("sample '{name}' precedes (or lacks) its TYPE line")));
        };

        // Series uniqueness: one sample per (name, labels).
        let mut sorted = labels.clone();
        sorted.sort();
        let series_key = format!("{name}{sorted:?}");
        if !seen_series.insert(series_key) {
            return Err(err(format!("duplicate sample for series '{name}' {sorted:?}")));
        }

        // Counters and histogram components must be non-negative.
        if (kind == "counter" || kind == "histogram") && value < 0.0 {
            return Err(err(format!("'{name}' is negative ({value})")));
        }

        if kind == "histogram" {
            let rest_labels: Vec<&(String, String)> =
                sorted.iter().filter(|(k, _)| k != "le").collect();
            let group = (family.to_string(), format!("{rest_labels:?}"));
            if name.ends_with("_bucket") {
                let le = sorted
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| err(format!("'{name}' bucket lacks an le label")))?;
                let bound: f64 = match le.1.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => v.parse().map_err(|_| err(format!("'{name}' le '{v}' unparsable")))?,
                };
                hist_buckets.entry(group).or_default().push((bound, value as u64));
            } else if name.ends_with("_count") {
                hist_counts.insert(group, value as u64);
            }
        }
    }

    // Histogram invariants: le strictly increasing as emitted, counts
    // cumulative (non-decreasing), +Inf present and equal to _count.
    for ((family, labels), buckets) in &hist_buckets {
        summary.histograms += 1;
        for w in buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "histogram '{family}' {labels}: le bounds not increasing ({} after {})",
                    w[1].0, w[0].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "histogram '{family}' {labels}: bucket counts not cumulative ({} after {})",
                    w[1].1, w[0].1
                ));
            }
        }
        let last = buckets.last().expect("grouped families are non-empty");
        if !last.0.is_infinite() {
            return Err(format!("histogram '{family}' {labels}: missing +Inf bucket"));
        }
        if let Some(count) = hist_counts.get(&(family.clone(), labels.clone())) {
            if last.1 != *count {
                return Err(format!(
                    "histogram '{family}' {labels}: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
        } else {
            return Err(format!("histogram '{family}' {labels}: missing _count sample"));
        }
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn real_exporter_output_conforms() {
        let r = Registry::new();
        r.counter("arbalest_test_total", &[("kind", "a\"b\\c")]).add(3);
        r.counter("arbalest_test_total", &[("kind", "plain")]).inc();
        r.gauge("arbalest_test_depth", &[("shard", "0")]).set(7);
        let h = r.histogram("arbalest_test_lat_nanos", &[("op", "x")]);
        for v in [0, 1, 3, 900, 70_000] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        let summary = check_exposition(&text).expect("exporter output must conform");
        assert_eq!(summary.families, 3);
        assert_eq!(summary.histograms, 1);
        assert!(summary.samples >= 5);
    }

    #[test]
    fn empty_exposition_is_fine() {
        assert_eq!(check_exposition("").unwrap(), ExpoSummary::default());
    }

    #[test]
    fn bad_metric_name_is_rejected() {
        let text = "# TYPE 9bad counter\n9bad 1\n";
        assert!(check_exposition(text).unwrap_err().contains("invalid metric name"));
    }

    #[test]
    fn sample_without_type_is_rejected() {
        let text = "arbalest_orphan_total 1\n";
        assert!(check_exposition(text).unwrap_err().contains("TYPE"));
    }

    #[test]
    fn duplicate_series_is_rejected() {
        let text = "# TYPE a counter\na{k=\"v\"} 1\na{k=\"v\"} 2\n";
        assert!(check_exposition(text).unwrap_err().contains("duplicate sample"));
    }

    #[test]
    fn illegal_escape_is_rejected() {
        let text = "# TYPE a counter\na{k=\"bad\\q\"} 1\n";
        assert!(check_exposition(text).unwrap_err().contains("illegal escape"));
    }

    #[test]
    fn non_cumulative_histogram_is_rejected() {
        let text = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"2\"} 3\n",
            "h_bucket{le=\"+Inf\"} 5\n",
            "h_sum 9\nh_count 5\n",
        );
        assert!(check_exposition(text).unwrap_err().contains("not cumulative"));
    }

    #[test]
    fn inf_bucket_must_match_count() {
        let text = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 2\n",
            "h_bucket{le=\"+Inf\"} 2\n",
            "h_sum 2\nh_count 3\n",
        );
        assert!(check_exposition(text).unwrap_err().contains("!= _count"));
    }

    #[test]
    fn missing_inf_bucket_is_rejected() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n";
        assert!(check_exposition(text).unwrap_err().contains("+Inf"));
    }
}
