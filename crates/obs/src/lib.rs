//! # arbalest-obs
//!
//! Unified observability layer for the ARBALEST reproduction: a std-only,
//! zero-dependency metrics registry plus lightweight span timing.
//!
//! Design goals, in order:
//!
//! 1. **Cheap when off.** Every handle ([`Counter`], [`Gauge`],
//!    [`Histogram`]) carries an `enabled` bit resolved at registration
//!    time; a disabled registry turns every hot-path operation into a
//!    predictable single-branch no-op and never calls `Instant::now()`.
//! 2. **Cheap when on.** Counter increments land in a per-thread arena
//!    block — a single-writer cell, so recording is a plain store with no
//!    locked RMW and no cross-thread cache-line traffic; histograms and
//!    gauges are relaxed atomics. No locks, no allocation, no formatting;
//!    the registry mutex is touched only at registration and snapshot
//!    time, never on the hot path.
//! 3. **One source of truth.** Registering the same `(name, labels)`
//!    pair twice returns handles backed by the *same* atomic cell, so two
//!    subsystems (e.g. the server's `STATS` frame and the Prometheus
//!    exporter) can observe identical values without double bookkeeping.
//!
//! The crate deliberately has no opinion about output formats beyond the
//! self-contained Prometheus text exposition ([`Snapshot::to_prometheus`]);
//! the JSON exporter lives in `offload::json` (which can see both crates —
//! `obs` sits below `offload` in the dependency order).
//!
//! Metric naming scheme (see DESIGN.md §12): `arbalest_<layer>_<what>`
//! with layer ∈ {`detector`, `rt`, `server`}; counters end in `_total`,
//! latency histograms in `_nanos`.

#![warn(missing_docs)]

pub mod chrome;
pub mod expo;
mod hist;
mod registry;
mod snapshot;
mod span;

pub use chrome::chrome_trace_json;
pub use expo::check_exposition;
pub use hist::{bucket_index, bucket_upper_bound, HistSnapshot, Histogram, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{MetricId, Snapshot};
pub use span::{Span, SpanContext, SpanEvent, SpanName};
