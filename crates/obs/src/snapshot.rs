//! Point-in-time metric snapshots and the Prometheus text exposition.

use crate::hist::{bucket_upper_bound, HistSnapshot};
use crate::registry::Key;

/// Identity of one metric series: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `arbalest_detector_accesses_total`.
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    pub(crate) fn from_key(k: &Key) -> MetricId {
        MetricId { name: k.0.clone(), labels: k.1.clone() }
    }

    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && labels
                .iter()
                .all(|&(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }

    /// `name{k="v",...}` rendering (bare name when label-free), with
    /// Prometheus escaping of label values.
    pub fn render(&self) -> String {
        self.render_with_extra(None)
    }

    fn render_with_extra(&self, extra: Option<(&str, &str)>) -> String {
        let mut out = self.name.clone();
        if self.labels.is_empty() && extra.is_none() {
            return out;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in
            self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Point-in-time copy of every metric in a registry, sorted by id.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter series and their values.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(MetricId, u64)>,
    /// Histogram series and their state.
    pub histograms: Vec<(MetricId, HistSnapshot)>,
}

impl Snapshot {
    /// Value of one counter series, if registered.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.iter().find(|(id, _)| id.matches(name, labels)).map(|&(_, v)| v)
    }

    /// Value of one gauge series, if registered.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.gauges.iter().find(|(id, _)| id.matches(name, labels)).map(|&(_, v)| v)
    }

    /// State of one histogram series, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistSnapshot> {
        self.histograms.iter().find(|(id, _)| id.matches(name, labels)).map(|(_, h)| h)
    }

    /// All counter series sharing `name`, as `(labels, value)` pairs.
    pub fn counters_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a [(String, String)], u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(id, _)| id.name == name)
            .map(|(id, v)| (id.labels.as_slice(), *v))
    }

    /// Sum across every counter series sharing `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters_named(name).map(|(_, v)| v).sum()
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as cumulative `le` buckets plus `_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (id, v) in &self.counters {
            type_line(&mut out, &id.name, "counter");
            out.push_str(&format!("{} {}\n", id.render(), v));
        }
        for (id, v) in &self.gauges {
            type_line(&mut out, &id.name, "gauge");
            out.push_str(&format!("{} {}\n", id.render(), v));
        }
        for (id, h) in &self.histograms {
            type_line(&mut out, &id.name, "histogram");
            // Cumulative samples at each occupied bucket boundary; empty
            // buckets in between are implied by monotonicity.
            let mut cum = 0u64;
            for &(i, n) in &h.buckets {
                cum += n;
                let le = match bucket_upper_bound(i as usize) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let bucket_id = MetricId { name: format!("{}_bucket", id.name), labels: id.labels.clone() };
                out.push_str(&format!(
                    "{} {}\n",
                    bucket_id.render_with_extra(Some(("le", &le))),
                    cum
                ));
            }
            if h.buckets.last().map(|&(i, _)| (i as usize) < crate::BUCKETS - 1).unwrap_or(true) {
                let bucket_id = MetricId { name: format!("{}_bucket", id.name), labels: id.labels.clone() };
                out.push_str(&format!(
                    "{} {}\n",
                    bucket_id.render_with_extra(Some(("le", "+Inf"))),
                    h.count
                ));
            }
            let sum_id = MetricId { name: format!("{}_sum", id.name), labels: id.labels.clone() };
            let count_id = MetricId { name: format!("{}_count", id.name), labels: id.labels.clone() };
            out.push_str(&format!("{} {}\n", sum_id.render(), h.sum));
            out.push_str(&format!("{} {}\n", count_id.render(), h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn prometheus_counters_and_gauges() {
        let r = Registry::new();
        r.counter("arbalest_x_total", &[("kind", "a")]).add(2);
        r.counter("arbalest_x_total", &[("kind", "b")]).add(5);
        r.gauge("arbalest_depth", &[]).set(9);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE arbalest_x_total counter\n"));
        assert!(text.contains("arbalest_x_total{kind=\"a\"} 2\n"));
        assert!(text.contains("arbalest_x_total{kind=\"b\"} 5\n"));
        assert!(text.contains("# TYPE arbalest_depth gauge\narbalest_depth 9\n"));
        // TYPE line emitted once per family.
        assert_eq!(text.matches("# TYPE arbalest_x_total").count(), 1);
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("arbalest_lat_nanos", &[]);
        h.record(0); // bucket 0, le="0"
        h.record(1); // bucket 1, le="1"
        h.record(3); // bucket 2, le="3"
        h.record(3);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE arbalest_lat_nanos histogram\n"));
        assert!(text.contains("arbalest_lat_nanos_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("arbalest_lat_nanos_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("arbalest_lat_nanos_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("arbalest_lat_nanos_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("arbalest_lat_nanos_sum 7\n"));
        assert!(text.contains("arbalest_lat_nanos_count 4\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let id = MetricId {
            name: "m".into(),
            labels: vec![("k".into(), "a\"b\\c".into())],
        };
        assert_eq!(id.render(), "m{k=\"a\\\"b\\\\c\"}");
    }
}
