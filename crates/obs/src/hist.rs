//! Fixed log2-bucket histograms.
//!
//! 64 buckets: bucket 0 holds exactly the value 0, bucket `i` (1..63)
//! holds `[2^(i-1), 2^i - 1]`, and bucket 63 is the overflow bucket for
//! everything `>= 2^62`. Bucket selection is a `leading_zeros` — one
//! instruction — so recording a sample costs two relaxed RMWs; the
//! min/max updates are load-guarded and skipped on almost every sample.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets.
pub const BUCKETS: usize = 64;

/// Bucket index for a sample: 0 for 0, otherwise the bit width of the
/// value clamped to `BUCKETS - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, or `None` for the overflow
/// bucket (rendered as `+Inf` in the Prometheus exposition).
#[inline]
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i >= BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1) // i == 0 -> 0
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) sum: AtomicU64,
    /// `u64::MAX` while empty.
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        // Steady-state samples rarely move the extrema, so check with a
        // plain load before paying for an RMW; a lost race only means the
        // next extreme sample re-tries. The count is the bucket total,
        // summed at snapshot time, not a third hot-path RMW.
        if v < self.min.load(Relaxed) {
            self.min.fetch_min(v, Relaxed);
        }
        if v > self.max.load(Relaxed) {
            self.max.fetch_max(v, Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> HistSnapshot {
        let count: u64 = self.buckets.iter().map(|b| b.load(Relaxed)).sum();
        let min = self.min.load(Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Relaxed);
                    (n != 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// Handle to a registered histogram. Cloning shares the same cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub(crate) on: bool,
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// Record one sample. No-op (one predictable branch) when the
    /// owning registry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.on {
            self.core.record(v);
        }
    }

    /// Record a duration in nanoseconds (saturating past `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.on {
            self.core.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Whether samples are actually recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistSnapshot {
        self.core.snapshot()
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample, 0 when empty.
    pub min: u64,
    /// Largest sample, 0 when empty.
    pub max: u64,
    /// `(bucket index, samples)` pairs for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_min_max_and_pow2_edges() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Every power-of-two edge: 2^k starts bucket k+1, 2^k - 1 ends bucket k.
        for k in 1..62 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge - 1), k, "below edge 2^{k}");
            assert_eq!(bucket_index(edge), k + 1, "at edge 2^{k}");
        }
        // Overflow bucket swallows the top of the range.
        assert_eq!(bucket_index(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Upper bounds agree with the index function: a bucket's bound is
        // the largest value mapping to it.
        for i in 0..BUCKETS - 1 {
            let ub = bucket_upper_bound(i).unwrap();
            assert_eq!(bucket_index(ub), i, "bound of bucket {i}");
            assert_eq!(bucket_index(ub + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(10), Some(1023));
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let h = Histogram { on: true, core: Arc::new(HistCore::new()) };
        for v in [0u64, 1, 7, 8, 1023, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, 0u64.wrapping_add(1).wrapping_add(7).wrapping_add(8).wrapping_add(1023).wrapping_add(u64::MAX));
        let idx: Vec<u32> = s.buckets.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 3, 4, 10, BUCKETS as u32 - 1]);
        assert!(s.buckets.iter().all(|&(_, n)| n == 1));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram { on: true, core: Arc::new(HistCore::new()) };
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram { on: false, core: Arc::new(HistCore::new()) };
        h.record(42);
        h.record_duration(Duration::from_millis(5));
        assert_eq!(h.snapshot().count, 0);
    }
}
