//! The metrics registry and its scalar handles.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{HistCore, Histogram};
use crate::snapshot::{MetricId, Snapshot};
use crate::span::{FlightRecorder, Span, SpanContext, SpanEvent, SpanName};

/// Key under which a metric is deduplicated: name plus sorted labels.
pub(crate) type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

#[derive(Default)]
pub(crate) struct Tables {
    pub(crate) counters: BTreeMap<Key, Arc<CounterCell>>,
    pub(crate) gauges: BTreeMap<Key, Arc<AtomicU64>>,
    pub(crate) hists: BTreeMap<Key, Arc<HistCore>>,
}

/// Shared state of one counter series: the fallback cell plus its
/// process-wide arena slot (`usize::MAX` when the arena is exhausted).
#[derive(Debug)]
pub(crate) struct CounterCell {
    shared: AtomicU64,
    slot: usize,
}

// ---------------------------------------------------------------------
// Per-thread counter arena.
//
// A locked RMW on a shared cache line costs an order of magnitude more
// than a plain store once several kernel threads hammer the same
// counters, and the detector increments three of them per analysed
// access. So counter cells live in *per-thread blocks*: each recording
// thread owns one block (single writer → `load; add; store` with no
// `lock` prefix), readers sum the slot across all blocks. Blocks are
// never freed — an exiting thread returns its block to a pool for the
// next thread, so memory is bounded by the peak number of concurrently
// recording threads (128 KiB each), and totals survive thread exit.
// Slots are allocated process-wide and never reused; a counter past the
// last slot falls back to `fetch_add` on its shared cell.
// ---------------------------------------------------------------------

/// Counter slots per arena block (128 KiB of cells).
const ARENA_SLOTS: usize = 16 * 1024;

#[derive(Debug)]
struct Block {
    cells: Box<[AtomicU64]>,
}

impl Block {
    fn new() -> Arc<Block> {
        Arc::new(Block { cells: (0..ARENA_SLOTS).map(|_| AtomicU64::new(0)).collect() })
    }
}

struct Arena {
    /// Every block ever handed out; never shrinks, so raw block pointers
    /// cached in TLS stay valid for the process lifetime.
    blocks: Mutex<Vec<Arc<Block>>>,
    /// Blocks whose owning thread exited, ready for reuse (not zeroed —
    /// they stay in `blocks`, so their totals keep counting).
    pool: Mutex<Vec<Arc<Block>>>,
}

fn arena() -> &'static Arena {
    static ARENA: OnceLock<Arena> = OnceLock::new();
    ARENA.get_or_init(|| Arena { blocks: Mutex::new(Vec::new()), pool: Mutex::new(Vec::new()) })
}

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

fn alloc_slot() -> usize {
    let s = NEXT_SLOT.fetch_add(1, Relaxed);
    if s < ARENA_SLOTS {
        s
    } else {
        usize::MAX
    }
}

thread_local! {
    /// This thread's block, cached as a raw pointer so the hot path is a
    /// plain const-init TLS load. Null until acquired, and nulled again
    /// when the guard drops during thread teardown. Neither key has a
    /// destructor of its own, so reading them is always safe.
    static BLOCK_PTR: std::cell::Cell<*const Block> = const { std::cell::Cell::new(std::ptr::null()) };
}
thread_local! {
    /// Keeps the block owned for the thread's lifetime; its drop returns
    /// the block to the pool.
    static BLOCK_GUARD: std::cell::RefCell<Option<BlockGuard>> = const { std::cell::RefCell::new(None) };
}

struct BlockGuard(Arc<Block>);

impl Drop for BlockGuard {
    fn drop(&mut self) {
        // After this, later increments on the dying thread (from other
        // TLS destructors) take the shared-cell path.
        BLOCK_PTR.with(|p| p.set(std::ptr::null()));
        arena().pool.lock().unwrap().push(self.0.clone());
    }
}

/// Slow path: adopt a pooled block or allocate one. Returns null when
/// the thread is already tearing down its TLS.
#[cold]
fn acquire_block() -> *const Block {
    let a = arena();
    let block = {
        let pooled = a.pool.lock().unwrap().pop();
        pooled.unwrap_or_else(|| {
            let b = Block::new();
            a.blocks.lock().unwrap().push(b.clone());
            b
        })
    };
    let ptr = Arc::as_ptr(&block);
    let installed = BLOCK_GUARD
        .try_with(|g| {
            *g.borrow_mut() = Some(BlockGuard(block.clone()));
        })
        .is_ok();
    if !installed {
        a.pool.lock().unwrap().push(block);
        return std::ptr::null();
    }
    BLOCK_PTR.with(|p| p.set(ptr));
    ptr
}

/// Sum `slot` across every block ever issued.
fn arena_total(slot: usize) -> u64 {
    arena()
        .blocks
        .lock()
        .unwrap()
        .iter()
        .fold(0u64, |acc, b| acc.wrapping_add(b.cells[slot].load(Relaxed)))
}

pub(crate) struct Inner {
    pub(crate) enabled: bool,
    pub(crate) tables: Mutex<Tables>,
    /// Span timestamps are reported relative to this.
    pub(crate) epoch: Instant,
    /// Interned `'static` span names; `SpanName.0` indexes this.
    pub(crate) names: Mutex<Vec<&'static str>>,
    /// Thread-striped flight-recorder rings, allocated on first span.
    pub(crate) recorder: OnceLock<FlightRecorder>,
    /// Per-registry cache of instrument packs (see [`Registry::state`]).
    pub(crate) extensions: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

/// Handle registry for counters, gauges, histograms, and spans.
///
/// Cloning is cheap (`Arc` bump) and every clone addresses the same
/// underlying tables, so a registry can be threaded through detector,
/// runtime, and server while all exporters see one set of cells.
///
/// A registry is either *enabled* or *disabled* for its whole lifetime;
/// handles registered on a disabled registry are permanent no-ops backed
/// by private cells that never appear in snapshots.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("enabled", &self.inner.enabled).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    fn with_enabled(enabled: bool) -> Self {
        Registry {
            inner: Arc::new(Inner {
                enabled,
                tables: Mutex::new(Tables::default()),
                epoch: Instant::now(),
                names: Mutex::new(Vec::new()),
                recorder: OnceLock::new(),
                extensions: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// An enabled registry: handles record, snapshots observe.
    pub fn new() -> Self {
        Registry::with_enabled(true)
    }

    /// A disabled registry: every handle is a single-branch no-op and
    /// `snapshot()` is always empty. This is the default wiring so that
    /// uninstrumented runs pay (almost) nothing.
    pub fn disabled() -> Self {
        Registry::with_enabled(false)
    }

    /// Whether handles registered here record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Get (or build once) this registry's cached instance of `T`.
    ///
    /// Subsystems that bundle their handles into a struct (an *instrument
    /// pack*) register each series exactly once per registry and then
    /// share the pack: constructing a fresh detector or runtime per work
    /// item costs one map lookup instead of re-registering dozens of
    /// series. The handles inside the pack address shared cells anyway,
    /// so sharing the pack is semantically identical — just cheaper.
    pub fn state<T: Send + Sync + 'static>(&self, build: impl FnOnce(&Registry) -> T) -> Arc<T> {
        if let Some(v) = self.inner.extensions.lock().unwrap().get(&TypeId::of::<T>()) {
            return v.clone().downcast::<T>().expect("extension slot holds its TypeId's type");
        }
        // Build outside the lock: `build` re-enters the registry to
        // register series (a different mutex, but keep the critical
        // section minimal). A concurrent builder loses the race below and
        // adopts the winner's pack; both registered the same cells.
        let built = Arc::new(build(self));
        self.inner
            .extensions
            .lock()
            .unwrap()
            .entry(TypeId::of::<T>())
            .or_insert(built)
            .clone()
            .downcast::<T>()
            .expect("extension slot holds its TypeId's type")
    }

    /// Register (or re-open) a counter. Same `(name, labels)` → same cell.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.inner.enabled {
            return Counter {
                on: false,
                slot: usize::MAX,
                cell: Arc::new(CounterCell { shared: AtomicU64::new(0), slot: usize::MAX }),
            };
        }
        let mut t = self.inner.tables.lock().unwrap();
        let cell = t
            .counters
            .entry(key(name, labels))
            .or_insert_with(|| {
                Arc::new(CounterCell { shared: AtomicU64::new(0), slot: alloc_slot() })
            })
            .clone();
        Counter { on: true, slot: cell.slot, cell }
    }

    /// Register (or re-open) a gauge. Same `(name, labels)` → same cell.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.inner.enabled {
            return Gauge { on: false, cell: Arc::new(AtomicU64::new(0)) };
        }
        let mut t = self.inner.tables.lock().unwrap();
        let cell = t.gauges.entry(key(name, labels)).or_default().clone();
        Gauge { on: true, cell }
    }

    /// Register (or re-open) a histogram. Same `(name, labels)` → same cells.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        if !self.inner.enabled {
            return Histogram { on: false, core: Arc::new(HistCore::new()) };
        }
        let mut t = self.inner.tables.lock().unwrap();
        let core = t
            .hists
            .entry(key(name, labels))
            .or_insert_with(|| Arc::new(HistCore::new()))
            .clone();
        Histogram { on: true, core }
    }

    /// Intern a span name once (at setup time); the returned id makes
    /// starting a span allocation- and lock-free.
    pub fn span_name(&self, name: &'static str) -> SpanName {
        let mut names = self.inner.names.lock().unwrap();
        if let Some(i) = names.iter().position(|&n| n == name) {
            return SpanName(i as u32);
        }
        names.push(name);
        SpanName((names.len() - 1) as u32)
    }

    /// Start a root span (fresh trace id); its wall time lands in the
    /// flight recorder when the guard drops. No-op (and no
    /// `Instant::now()`) when disabled.
    pub fn span(&self, name: SpanName) -> Span {
        Span::start(self, name, None)
    }

    /// Start a span that additionally records its duration (nanoseconds)
    /// into `hist` on drop — one `Instant` pair serves both sinks.
    pub fn span_with(&self, name: SpanName, hist: &Histogram) -> Span {
        Span::start(self, name, Some(hist.clone()))
    }

    /// Start a child span of `parent`: same trace id, fresh span id,
    /// parent link to `parent`'s span. This is the cross-thread (and
    /// cross-process) handoff: pass the parent's [`SpanContext`] by
    /// value and start the continuation wherever the work resumed. If
    /// `parent` is untraced, the span becomes a fresh root instead.
    pub fn span_child(&self, name: SpanName, parent: SpanContext) -> Span {
        let ctx = if parent.is_traced() { Some(parent.child()) } else { None };
        Span::start_with(self, name, None, ctx)
    }

    /// Start a span with an *exact* context — trace, span, and parent id
    /// taken verbatim. Used when recording a span on behalf of a remote
    /// peer that already minted the ids (the server materialises the
    /// client's submit span from the context stamped on the wire).
    pub fn span_at(&self, name: SpanName, ctx: SpanContext) -> Span {
        Span::start_with(self, name, None, Some(ctx))
    }

    /// Drain the flight recorder: returns buffered span events sorted by
    /// start time and resets the rings. Concurrent recording may tear
    /// individual slots; this is a diagnostic stream, not an audit log.
    /// Records lost to ring overwrite since the last drain are folded
    /// into the `arbalest_obs_dropped_spans_total` counter.
    pub fn drain_spans(&self) -> Vec<SpanEvent> {
        let Some(rec) = self.inner.recorder.get() else {
            return Vec::new();
        };
        let (events, lost) = {
            let names = self.inner.names.lock().unwrap();
            rec.drain(&names)
        };
        if lost > 0 {
            self.counter("arbalest_obs_dropped_spans_total", &[]).add(lost);
        }
        events
    }

    /// Span records lost to ring overwrite so far (drained or not). A
    /// nonzero value means a span dump is incomplete: the flight
    /// recorder keeps only the most recent 1024 records per ring
    /// between drains.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.recorder.get().map(FlightRecorder::dropped).unwrap_or(0)
    }

    pub(crate) fn inner(&self) -> &Arc<Inner> {
        &self.inner
    }

    /// Point-in-time copy of every registered metric, sorted by
    /// `(name, labels)` so output is deterministic.
    pub fn snapshot(&self) -> Snapshot {
        let t = self.inner.tables.lock().unwrap();
        // One arena pass for all counters: hold the block list once and
        // sum each cell's slot across it on top of the shared fallback.
        let blocks = arena().blocks.lock().unwrap();
        Snapshot {
            counters: t
                .counters
                .iter()
                .map(|(k, c)| {
                    let mut v = c.shared.load(Relaxed);
                    if c.slot != usize::MAX {
                        for b in blocks.iter() {
                            v = v.wrapping_add(b.cells[c.slot].load(Relaxed));
                        }
                    }
                    (MetricId::from_key(k), v)
                })
                .collect(),
            gauges: t
                .gauges
                .iter()
                .map(|(k, v)| (MetricId::from_key(k), v.load(Relaxed)))
                .collect(),
            histograms: t
                .hists
                .iter()
                .map(|(k, h)| (MetricId::from_key(k), h.snapshot()))
                .collect(),
        }
    }
}

/// Monotonically increasing counter handle. Cloning shares the cell.
///
/// Increments land in the calling thread's arena block — a single-writer
/// cell, so recording is a plain load/add/store with no locked RMW and
/// no cross-thread cache-line traffic. Reads sum the slot across all
/// blocks; they are monotone and exact once writers have quiesced (e.g.
/// after a `join`), which is when snapshots and tests look.
#[derive(Clone, Debug)]
pub struct Counter {
    pub(crate) on: bool,
    /// Copy of `cell.slot` so the fast path needs no pointer chase
    /// through the `Arc` (`usize::MAX` when disabled or arena-less).
    pub(crate) slot: usize,
    pub(crate) cell: Arc<CounterCell>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.on {
            return;
        }
        if self.slot != usize::MAX {
            let mut p = BLOCK_PTR.with(std::cell::Cell::get);
            if p.is_null() {
                p = acquire_block();
            }
            if !p.is_null() {
                // Single writer per block: a plain read-modify-write
                // store cannot lose concurrent updates. In-bounds by
                // construction: a slot other than `usize::MAX` came from
                // `alloc_slot`, which only returns values < ARENA_SLOTS,
                // and every block holds exactly ARENA_SLOTS cells.
                debug_assert!(self.slot < ARENA_SLOTS);
                let block = unsafe { &*p };
                let c = unsafe { block.cells.get_unchecked(self.slot) };
                c.store(c.load(Relaxed).wrapping_add(n), Relaxed);
                return;
            }
        }
        self.cell.shared.fetch_add(n, Relaxed);
    }

    /// Current value (0 forever on a disabled registry).
    pub fn get(&self) -> u64 {
        let mut v = self.cell.shared.load(Relaxed);
        if self.on && self.slot != usize::MAX {
            v = v.wrapping_add(arena_total(self.slot));
        }
        v
    }
}

/// Last-write-wins gauge handle. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    pub(crate) on: bool,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.on {
            self.cell.store(v, Relaxed);
        }
    }

    /// Current value (0 forever on a disabled registry).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_cell() {
        let r = Registry::new();
        let a = r.counter("arbalest_test_total", &[("kind", "x")]);
        // Label order must not matter for identity.
        let b = r.counter("arbalest_test_total", &[("kind", "x")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 4);
    }

    #[test]
    fn label_sets_are_distinct_series() {
        let r = Registry::new();
        r.counter("c", &[("k", "a")]).inc();
        r.counter("c", &[("k", "b")]).add(2);
        r.counter("c", &[]).add(10);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counter("c", &[("k", "a")]), Some(1));
        assert_eq!(snap.counter("c", &[("k", "b")]), Some(2));
        assert_eq!(snap.counter("c", &[]), Some(10));
        assert_eq!(snap.counter("c", &[("k", "z")]), None);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        let c = r.counter("c", &[]);
        let g = r.gauge("g", &[]);
        let h = r.histogram("h", &[]);
        c.add(5);
        g.set(9);
        h.record(3);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let r = Registry::new();
        let c = r.counter("arbalest_test_concurrent_total", &[]);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            r.snapshot().counter("arbalest_test_concurrent_total", &[]),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn counts_survive_thread_exit_and_block_reuse() {
        let r = Registry::new();
        let c = r.counter("arbalest_test_arena_exit_total", &[]);
        // Two generations of short-lived threads: the second generation
        // reuses pooled blocks from the first without clobbering its
        // counts.
        for _ in 0..2 {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let c = c.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        assert_eq!(c.get(), 8_000);
        assert_eq!(r.snapshot().counter("arbalest_test_arena_exit_total", &[]), Some(8_000));
    }

    #[test]
    fn state_builds_once_and_shares_the_pack() {
        struct Pack {
            c: Counter,
        }
        let r = Registry::new();
        let a = r.state(|reg| Pack { c: reg.counter("arbalest_test_pack_total", &[]) });
        let b = r.state::<Pack>(|_| unreachable!("second call must reuse the cached pack"));
        a.c.inc();
        assert_eq!(b.c.get(), 1);
        // A different registry builds its own pack with its own cells.
        let other = Registry::new();
        let c = other.state(|reg| Pack { c: reg.counter("arbalest_test_pack_total", &[]) });
        assert_eq!(c.c.get(), 0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let r = Registry::new();
        let g = r.gauge("depth", &[("shard", "0")]);
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(r.snapshot().gauge("depth", &[("shard", "0")]), Some(3));
    }
}
