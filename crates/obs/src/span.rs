//! Span timing and the lock-free flight recorder.
//!
//! A [`Span`] is an RAII guard: it captures one `Instant` at start and
//! one at drop, writes a fixed-size record into a thread-striped ring
//! buffer, and optionally feeds the same duration into a histogram.
//! Rings are written with relaxed atomics and a `fetch_add` head, so
//! recording never blocks; a drain racing a writer may observe a torn
//! slot, which is acceptable for a diagnostic flight recorder.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::registry::{Inner, Registry};

/// Rings per registry; threads are striped across them by thread id.
const NUM_RINGS: usize = 16;
/// Slots per ring; the recorder keeps the most recent writes.
const RING_SLOTS: usize = 1024;

/// Interned span name (see [`Registry::span_name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanName(pub(crate) u32);

/// Process-wide small integer id for the current thread.
fn current_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == u32::MAX {
            id = NEXT.fetch_add(1, Relaxed);
            t.set(id);
        }
        id
    })
}

#[derive(Debug)]
struct Slot {
    /// `name_id << 32 | tid`.
    meta: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

#[derive(Debug)]
struct Ring {
    /// Total records ever written; slot index is `head % RING_SLOTS`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS)
                .map(|_| Slot {
                    meta: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// Thread-striped ring buffers holding the most recent span records.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    rings: Vec<Ring>,
}

impl FlightRecorder {
    pub(crate) fn new() -> Self {
        FlightRecorder { rings: (0..NUM_RINGS).map(|_| Ring::new()).collect() }
    }

    fn record(&self, name: u32, start_ns: u64, dur_ns: u64) {
        let tid = current_tid();
        let ring = &self.rings[tid as usize % NUM_RINGS];
        let i = ring.head.fetch_add(1, Relaxed) as usize % RING_SLOTS;
        let slot = &ring.slots[i];
        slot.meta.store(u64::from(name) << 32 | u64::from(tid), Relaxed);
        slot.start_ns.store(start_ns, Relaxed);
        slot.dur_ns.store(dur_ns, Relaxed);
    }

    pub(crate) fn drain(&self, names: &[&'static str]) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in &self.rings {
            let written = ring.head.swap(0, Relaxed);
            let live = (written as usize).min(RING_SLOTS);
            for slot in &ring.slots[..live] {
                let meta = slot.meta.load(Relaxed);
                let name_id = (meta >> 32) as usize;
                let Some(&name) = names.get(name_id) else { continue };
                out.push(SpanEvent {
                    name,
                    tid: meta as u32,
                    start_ns: slot.start_ns.load(Relaxed),
                    dur_ns: slot.dur_ns.load(Relaxed),
                });
            }
        }
        out.sort_by_key(|e| e.start_ns);
        out
    }
}

/// One completed span drained from the flight recorder.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Interned span name.
    pub name: &'static str,
    /// Small process-wide id of the recording thread.
    pub tid: u32,
    /// Start time in nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

/// RAII timing guard; records on drop. Obtained from [`Registry::span`]
/// or [`Registry::span_with`].
pub struct Span {
    /// `None` on a disabled registry — the whole guard is then inert.
    armed: Option<Armed>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("armed", &self.armed.is_some()).finish()
    }
}

struct Armed {
    inner: std::sync::Arc<Inner>,
    name: u32,
    start: Instant,
    hist: Option<crate::Histogram>,
}

impl Span {
    pub(crate) fn start(reg: &Registry, name: SpanName, hist: Option<crate::Histogram>) -> Span {
        if !reg.is_enabled() {
            return Span { armed: None };
        }
        Span {
            armed: Some(Armed {
                inner: reg.inner().clone(),
                name: name.0,
                start: Instant::now(),
                hist,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.armed.take() else { return };
        let dur = a.start.elapsed();
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let start_ns =
            u64::try_from(a.start.duration_since(a.inner.epoch).as_nanos()).unwrap_or(u64::MAX);
        a.inner.recorder.get_or_init(FlightRecorder::new).record(a.name, start_ns, dur_ns);
        if let Some(h) = a.hist {
            h.record(dur_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_the_recorder_and_histogram() {
        let r = Registry::new();
        let h = r.histogram("arbalest_test_span_nanos", &[]);
        let name = r.span_name("test.work");
        for _ in 0..3 {
            let _s = r.span_with(name, &h);
            std::hint::black_box(0u64);
        }
        {
            let _plain = r.span(r.span_name("test.other"));
        }
        let events = r.drain_spans();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().filter(|e| e.name == "test.work").count(), 3);
        assert_eq!(events.iter().filter(|e| e.name == "test.other").count(), 1);
        // Sorted by start time.
        assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(h.snapshot().count, 3);
        // Drain resets.
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn ring_overflow_keeps_most_recent() {
        let r = Registry::new();
        let name = r.span_name("test.many");
        for _ in 0..3000 {
            let _s = r.span(name);
        }
        let events = r.drain_spans();
        // Single thread → one ring → capped at the ring size.
        assert_eq!(events.len(), RING_SLOTS);
    }

    #[test]
    fn interning_is_stable() {
        let r = Registry::new();
        let a = r.span_name("x");
        let b = r.span_name("y");
        let a2 = r.span_name("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let r = Registry::disabled();
        let name = r.span_name("noop");
        drop(r.span(name));
        assert!(r.drain_spans().is_empty());
    }
}
