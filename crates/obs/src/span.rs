//! Span timing, causal span trees, and the lock-free flight recorder.
//!
//! A [`Span`] is an RAII guard: it captures one `Instant` at start and
//! one at drop (or at an explicit [`Span::end`]), writes a fixed-size
//! record into a thread-striped ring buffer, and optionally feeds the
//! same duration into a histogram. Rings are written with relaxed
//! atomics and a `fetch_add` head, so recording never blocks; a drain
//! racing a writer may observe a torn slot, which is acceptable for a
//! diagnostic flight recorder.
//!
//! Since the causal-tracing layer, every span also carries a
//! [`SpanContext`]: a 128-bit trace id shared by every span of one
//! logical request, a 64-bit span id, and the parent's span id (0 for a
//! root). Contexts are plain `Copy` values, so handing a trace across a
//! thread — or across the wire to the analysis server — is passing three
//! integers and starting a child with [`Registry::span_child`].
//! Ring overwrites are counted in a `dropped_spans` counter so a drain
//! that lost history says so instead of silently looking complete.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::registry::{Inner, Registry};

/// Rings per registry; threads are striped across them by thread id.
const NUM_RINGS: usize = 16;
/// Slots per ring; the recorder keeps the most recent writes.
const RING_SLOTS: usize = 1024;

/// Interned span name (see [`Registry::span_name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanName(pub(crate) u32);

/// Causal identity of one span: which trace it belongs to, which span it
/// is, and which span caused it.
///
/// A context is nine words of plain data — `Copy`, `Send`, and cheap to
/// stamp onto a wire frame. The zero context ([`SpanContext::NONE`])
/// means "untraced" and is what disabled registries hand out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// 128-bit trace id shared by every span of one causal tree.
    pub trace: u128,
    /// This span's 64-bit id (unique within the process that minted it).
    pub span: u64,
    /// The parent span's id; 0 for a trace root.
    pub parent: u64,
}

impl SpanContext {
    /// The untraced context: all-zero ids.
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0, parent: 0 };

    /// Whether this context carries a real trace id.
    pub fn is_traced(&self) -> bool {
        self.trace != 0
    }

    /// Mint a fresh root context: new trace id, new span id, no parent.
    pub fn new_root() -> SpanContext {
        SpanContext { trace: fresh_trace_id(), span: fresh_span_id(), parent: 0 }
    }

    /// Mint a child context of `self`: same trace, fresh span id,
    /// parented to this span.
    pub fn child(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: fresh_span_id(), parent: self.span }
    }
}

/// Process-wide id generation: a per-process random-ish seed (boot time
/// entropy — std-only, no RNG crate) mixed with a monotone counter
/// through splitmix64, so ids are unique within a process and almost
/// surely distinct across processes.
fn id_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let pid = u64::from(std::process::id());
        // Address-space layout contributes a few extra bits.
        let aslr = &SEED as *const _ as u64;
        t ^ pid.rotate_left(32) ^ aslr.rotate_left(17)
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh nonzero 64-bit span id.
fn fresh_span_id() -> u64 {
    loop {
        let n = NEXT_ID.fetch_add(1, Relaxed);
        let id = splitmix64(id_seed() ^ n);
        if id != 0 {
            return id;
        }
    }
}

/// A fresh nonzero 128-bit trace id.
fn fresh_trace_id() -> u128 {
    loop {
        let id = (u128::from(fresh_span_id()) << 64) | u128::from(fresh_span_id());
        if id != 0 {
            return id;
        }
    }
}

/// Process-wide small integer id for the current thread.
fn current_tid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: Cell<u32> = const { Cell::new(u32::MAX) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == u32::MAX {
            id = NEXT.fetch_add(1, Relaxed);
            t.set(id);
        }
        id
    })
}

#[derive(Debug)]
struct Slot {
    /// `name_id << 32 | tid`.
    meta: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
}

#[derive(Debug)]
struct Ring {
    /// Total records ever written; slot index is `head % RING_SLOTS`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS)
                .map(|_| Slot {
                    meta: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    trace_hi: AtomicU64::new(0),
                    trace_lo: AtomicU64::new(0),
                    span_id: AtomicU64::new(0),
                    parent_id: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// Thread-striped ring buffers holding the most recent span records.
#[derive(Debug)]
pub(crate) struct FlightRecorder {
    rings: Vec<Ring>,
    /// Records lost to ring overwrite, folded in at each drain.
    dropped: AtomicU64,
}

impl FlightRecorder {
    pub(crate) fn new() -> Self {
        FlightRecorder {
            rings: (0..NUM_RINGS).map(|_| Ring::new()).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    fn record(&self, name: u32, ctx: SpanContext, start_ns: u64, dur_ns: u64) {
        let tid = current_tid();
        let ring = &self.rings[tid as usize % NUM_RINGS];
        let i = ring.head.fetch_add(1, Relaxed) as usize % RING_SLOTS;
        let slot = &ring.slots[i];
        slot.meta.store(u64::from(name) << 32 | u64::from(tid), Relaxed);
        slot.start_ns.store(start_ns, Relaxed);
        slot.dur_ns.store(dur_ns, Relaxed);
        slot.trace_hi.store((ctx.trace >> 64) as u64, Relaxed);
        slot.trace_lo.store(ctx.trace as u64, Relaxed);
        slot.span_id.store(ctx.span, Relaxed);
        slot.parent_id.store(ctx.parent, Relaxed);
    }

    /// Overwrites so far: the folded total plus any not-yet-drained
    /// excess sitting in the rings right now.
    pub(crate) fn dropped(&self) -> u64 {
        let pending: u64 = self
            .rings
            .iter()
            .map(|r| r.head.load(Relaxed).saturating_sub(RING_SLOTS as u64))
            .sum();
        self.dropped.load(Relaxed).wrapping_add(pending)
    }

    /// Drain every ring; returns the events plus how many records this
    /// drain lost to overwrite.
    pub(crate) fn drain(&self, names: &[&'static str]) -> (Vec<SpanEvent>, u64) {
        let mut out = Vec::new();
        let mut lost_total = 0u64;
        for ring in &self.rings {
            let written = ring.head.swap(0, Relaxed);
            let live = (written as usize).min(RING_SLOTS);
            let lost = written.saturating_sub(RING_SLOTS as u64);
            if lost > 0 {
                self.dropped.fetch_add(lost, Relaxed);
                lost_total += lost;
            }
            for slot in &ring.slots[..live] {
                let meta = slot.meta.load(Relaxed);
                let name_id = (meta >> 32) as usize;
                let Some(&name) = names.get(name_id) else { continue };
                out.push(SpanEvent {
                    name,
                    tid: meta as u32,
                    start_ns: slot.start_ns.load(Relaxed),
                    dur_ns: slot.dur_ns.load(Relaxed),
                    trace: (u128::from(slot.trace_hi.load(Relaxed)) << 64)
                        | u128::from(slot.trace_lo.load(Relaxed)),
                    span: slot.span_id.load(Relaxed),
                    parent: slot.parent_id.load(Relaxed),
                });
            }
        }
        out.sort_by_key(|e| e.start_ns);
        (out, lost_total)
    }
}

/// One completed span drained from the flight recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Interned span name.
    pub name: &'static str,
    /// Small process-wide id of the recording thread.
    pub tid: u32,
    /// Start time in nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
    /// 128-bit trace id (0 for pre-tracing flat spans).
    pub trace: u128,
    /// This span's 64-bit id.
    pub span: u64,
    /// Parent span id; 0 for a trace root.
    pub parent: u64,
}

impl SpanEvent {
    /// End time in nanoseconds since the registry's epoch (saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// The event's causal identity as a [`SpanContext`] — hand this to
    /// [`Registry::span_child`] to keep building the tree.
    pub fn context(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: self.span, parent: self.parent }
    }
}

/// RAII timing guard; records on drop or at an explicit [`Span::end`].
/// Obtained from [`Registry::span`], [`Registry::span_with`],
/// [`Registry::span_child`], or [`Registry::span_at`].
pub struct Span {
    /// `None` on a disabled registry — the whole guard is then inert.
    armed: Option<Armed>,
    /// The causal identity; [`SpanContext::NONE`] when inert.
    ctx: SpanContext,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("armed", &self.armed.is_some()).field("ctx", &self.ctx).finish()
    }
}

struct Armed {
    inner: std::sync::Arc<Inner>,
    name: u32,
    start: Instant,
    hist: Option<crate::Histogram>,
}

impl Span {
    pub(crate) fn start(reg: &Registry, name: SpanName, hist: Option<crate::Histogram>) -> Span {
        Span::start_with(reg, name, hist, None)
    }

    pub(crate) fn start_with(
        reg: &Registry,
        name: SpanName,
        hist: Option<crate::Histogram>,
        ctx: Option<SpanContext>,
    ) -> Span {
        if !reg.is_enabled() {
            return Span { armed: None, ctx: SpanContext::NONE };
        }
        Span {
            armed: Some(Armed {
                inner: reg.inner().clone(),
                name: name.0,
                start: Instant::now(),
                hist,
            }),
            ctx: ctx.unwrap_or_else(SpanContext::new_root),
        }
    }

    /// The span's causal identity — stamp it on work handed to another
    /// thread (or serialized onto the wire) and start the continuation
    /// with [`Registry::span_child`]. [`SpanContext::NONE`] when inert.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Explicitly end the span now, returning the recorded event (so a
    /// caller can tee it into its own buffer). `None` on a disabled
    /// registry. Dropping the guard records the same event without
    /// returning it.
    pub fn end(mut self) -> Option<SpanEvent> {
        let a = self.armed.take()?;
        Some(finish(a, self.ctx))
    }
}

/// Record the completed span into the recorder (and histogram), and
/// materialise the event.
fn finish(a: Armed, ctx: SpanContext) -> SpanEvent {
    let dur = a.start.elapsed();
    let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
    let start_ns =
        u64::try_from(a.start.duration_since(a.inner.epoch).as_nanos()).unwrap_or(u64::MAX);
    a.inner.recorder.get_or_init(FlightRecorder::new).record(a.name, ctx, start_ns, dur_ns);
    if let Some(h) = a.hist {
        h.record(dur_ns);
    }
    let name = a.inner.names.lock().unwrap().get(a.name as usize).copied().unwrap_or("");
    SpanEvent {
        name,
        tid: current_tid(),
        start_ns,
        dur_ns,
        trace: ctx.trace,
        span: ctx.span,
        parent: ctx.parent,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.armed.take() else { return };
        let _ = finish(a, self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_the_recorder_and_histogram() {
        let r = Registry::new();
        let h = r.histogram("arbalest_test_span_nanos", &[]);
        let name = r.span_name("test.work");
        for _ in 0..3 {
            let _s = r.span_with(name, &h);
            std::hint::black_box(0u64);
        }
        {
            let _plain = r.span(r.span_name("test.other"));
        }
        let events = r.drain_spans();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().filter(|e| e.name == "test.work").count(), 3);
        assert_eq!(events.iter().filter(|e| e.name == "test.other").count(), 1);
        // Sorted by start time.
        assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(h.snapshot().count, 3);
        // Every top-level span is its own root trace.
        assert!(events.iter().all(|e| e.trace != 0 && e.span != 0 && e.parent == 0));
        // Drain resets.
        assert!(r.drain_spans().is_empty());
    }

    #[test]
    fn child_spans_share_the_trace_and_link_to_their_parent() {
        let r = Registry::new();
        let root = r.span(r.span_name("root"));
        let rctx = root.context();
        assert!(rctx.is_traced());
        {
            let child = r.span_child(r.span_name("child"), rctx);
            let cctx = child.context();
            assert_eq!(cctx.trace, rctx.trace);
            assert_eq!(cctx.parent, rctx.span);
            assert_ne!(cctx.span, rctx.span);
            // Grandchild through an explicit cross-thread handoff.
            let handoff = cctx;
            std::thread::scope(|s| {
                let r2 = r.clone();
                s.spawn(move || {
                    let g = r2.span_child(r2.span_name("grandchild"), handoff);
                    assert_eq!(g.context().trace, handoff.trace);
                    assert_eq!(g.context().parent, handoff.span);
                });
            });
        }
        drop(root);
        let events = r.drain_spans();
        assert_eq!(events.len(), 3);
        let root_ev = events.iter().find(|e| e.name == "root").unwrap();
        let child_ev = events.iter().find(|e| e.name == "child").unwrap();
        let grand_ev = events.iter().find(|e| e.name == "grandchild").unwrap();
        assert_eq!(root_ev.trace, child_ev.trace);
        assert_eq!(child_ev.trace, grand_ev.trace);
        assert_eq!(child_ev.parent, root_ev.span);
        assert_eq!(grand_ev.parent, child_ev.span);
    }

    #[test]
    fn span_at_records_the_exact_given_context() {
        let r = Registry::new();
        let ctx = SpanContext { trace: 42, span: 7, parent: 3 };
        let ev = r.span_at(r.span_name("exact"), ctx).end().unwrap();
        assert_eq!((ev.trace, ev.span, ev.parent), (42, 7, 3));
        let drained = r.drain_spans();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].context(), ctx);
    }

    #[test]
    fn explicit_end_returns_the_event() {
        let r = Registry::new();
        let s = r.span(r.span_name("ended"));
        let ctx = s.context();
        let ev = s.end().expect("enabled registry records");
        assert_eq!(ev.name, "ended");
        assert_eq!(ev.context(), ctx);
        assert!(ev.end_ns() >= ev.start_ns);
        // end() already recorded; the drain sees exactly one event.
        assert_eq!(r.drain_spans().len(), 1);
    }

    #[test]
    fn ring_overflow_keeps_most_recent_and_counts_drops() {
        let r = Registry::new();
        let name = r.span_name("test.many");
        for _ in 0..3000 {
            let _s = r.span(name);
        }
        // Overwrites are visible before the drain...
        assert_eq!(r.dropped_spans(), 3000 - RING_SLOTS as u64);
        let events = r.drain_spans();
        // Single thread → one ring → capped at the ring size.
        assert_eq!(events.len(), RING_SLOTS);
        // ...and stay counted after it.
        assert_eq!(r.dropped_spans(), 3000 - RING_SLOTS as u64);
        // The drain exported the loss as a metric.
        assert_eq!(
            r.snapshot().counter("arbalest_obs_dropped_spans_total", &[]),
            Some(3000 - RING_SLOTS as u64)
        );
    }

    #[test]
    fn interning_is_stable() {
        let r = Registry::new();
        let a = r.span_name("x");
        let b = r.span_name("y");
        let a2 = r.span_name("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let r = Registry::disabled();
        let name = r.span_name("noop");
        let s = r.span(name);
        assert_eq!(s.context(), SpanContext::NONE);
        assert!(s.end().is_none());
        drop(r.span_child(name, SpanContext { trace: 1, span: 2, parent: 0 }));
        assert!(r.drain_spans().is_empty());
        assert_eq!(r.dropped_spans(), 0);
    }

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let a = SpanContext::new_root();
        let b = SpanContext::new_root();
        assert!(a.is_traced() && b.is_traced());
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.span, b.span);
        let c = a.child();
        assert_eq!(c.trace, a.trace);
        assert_eq!(c.parent, a.span);
        assert_ne!(c.span, a.span);
    }
}
