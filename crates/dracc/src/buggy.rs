//! The 16 seeded data-mapping bugs, at the paper's DRACC IDs.
//!
//! Each function reproduces a DRACC bug *pattern*: a wrong map-type, a
//! wrong array section, a missing transfer, or a laundered update. The
//! doc comment on each names the root cause and the observable effect.

use crate::{Benchmark, N};
use arbalest_offload::prelude::*;

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            id: 22,
            name: "alloc_instead_of_to",
            expected: Some(Effect::Uum),
            description: "Fig. 1: matrix-vector product where the matrix is mapped `alloc` \
                          instead of `to`; the kernel reads an uninitialised CV.",
            runner: b022,
        },
        Benchmark {
            id: 23,
            name: "section_longer_than_array",
            expected: Some(Effect::Bo),
            description: "map(to: a[0:N+8]) — the array section exceeds the variable; the \
                          entry transfer reads past the OV heap block.",
            runner: b023,
        },
        Benchmark {
            id: 24,
            name: "from_instead_of_tofrom",
            expected: Some(Effect::Uum),
            description: "accumulator mapped `from` (alloc on entry, no copy-in); the kernel \
                          reads it before writing.",
            runner: b024,
        },
        Benchmark {
            id: 25,
            name: "section_offset_overruns",
            expected: Some(Effect::Bo),
            description: "map(to: a[4:N]) — offset plus length walk past the end of the \
                          variable during the entry transfer.",
            runner: b025,
        },
        Benchmark {
            id: 26,
            name: "to_instead_of_tofrom",
            expected: Some(Effect::Usd),
            description: "Fig. 2 (top): kernel updates `to`-mapped data; the host read after \
                          the region observes the stale original.",
            runner: b026,
        },
        Benchmark {
            id: 27,
            name: "stale_read_after_data_region",
            expected: Some(Effect::Usd),
            description: "target data map(to:) around a writing kernel; no copy-back at \
                          region end, host reads stale data.",
            runner: b027,
        },
        Benchmark {
            id: 28,
            name: "copy_back_overflow",
            expected: Some(Effect::Bo),
            description: "map(from: a[0:N+8]) — the exit transfer writes past the OV heap \
                          block.",
            runner: b028,
        },
        Benchmark {
            id: 29,
            name: "straddling_tofrom_section",
            expected: Some(Effect::Bo),
            description: "map(tofrom: a[N/2:N]) — the section straddles the end of the \
                          variable; both transfers overflow.",
            runner: b029,
        },
        Benchmark {
            id: 30,
            name: "enter_data_oversized",
            expected: Some(Effect::Bo),
            description: "target enter data map(to: a[0:N+8]): unstructured entry transfer \
                          overflows the OV.",
            runner: b030,
        },
        Benchmark {
            id: 31,
            name: "exit_data_oversized",
            expected: Some(Effect::Bo),
            description: "target exit data map(from: a[0:N+8]): unstructured exit transfer \
                          overflows the OV.",
            runner: b031,
        },
        Benchmark {
            id: 32,
            name: "missing_update_from",
            expected: Some(Effect::Usd),
            description: "inside a persistent data region the host reads results without a \
                          `target update from` after the kernel wrote the CV.",
            runner: b032,
        },
        Benchmark {
            id: 33,
            name: "missing_update_to",
            expected: Some(Effect::Usd),
            description: "host rewrites inputs inside a data region without `target update \
                          to`; the reference count suppresses the inner map(to) transfer and \
                          the kernel reads the stale CV.",
            runner: b033,
        },
        Benchmark {
            id: 34,
            name: "staged_update_of_uninit",
            expected: Some(Effect::Uum),
            description: "an uninitialised variable is pushed with `target update to` (staged \
                          through a runtime buffer) and read in the kernel — a UUM that \
                          allocator-interception tools cannot see (§VI-C's DRACC_OMP_034).",
            runner: b034,
        },
        Benchmark {
            id: 49,
            name: "enter_data_alloc_read",
            expected: Some(Effect::Uum),
            description: "target enter data map(alloc:) followed by a kernel that reads the \
                          never-initialised CV.",
            runner: b049,
        },
        Benchmark {
            id: 50,
            name: "uninitialised_host_input",
            expected: Some(Effect::Uum),
            description: "the host input array is never initialised; map(to:) faithfully \
                          copies garbage and the kernel consumes it.",
            runner: b050,
        },
        Benchmark {
            id: 51,
            name: "cv_deleted_between_kernels",
            expected: Some(Effect::Uum),
            description: "the CV is released between two kernels; the re-allocated CV no \
                          longer holds the first kernel's results.",
            runner: b051,
        },
    ]
}

/// Fig. 1 (DRACC_OMP_022): `map(alloc: b)` should be `map(to: b)`.
fn b022(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc_with::<f64>("b", N * 8, |_| 1.0);
    let c = rt.alloc_with::<f64>("c", N, |_| 0.0);
    rt.target()
        .map(Map::to(&a))
        .map(Map::alloc(&b)) // BUG: mapping type should be "to"
        .map(Map::tofrom(&c))
        .run(move |k| {
            k.par_for(0..N, |k, i| {
                let mut acc = k.read(&c, i);
                for j in 0..8 {
                    acc += k.read(&b, j + i * 8) * k.read(&a, (i + j) % N);
                }
                k.write(&c, i, acc);
            });
        });
    let _ = rt.read(&c, 0);
}

fn b023(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target()
        .map(Map::to_section(&a, 0, N + 8)) // BUG: section exceeds the array
        .run(move |k| {
            k.for_each(0..N, |k, i| {
                let _ = k.read(&a, i);
            });
        });
}

fn b024(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |i| (i % 7) as f64);
    let acc = rt.alloc_with::<f64>("acc", N, |_| 0.0);
    rt.target()
        .map(Map::to(&x))
        .map(Map::from(&acc)) // BUG: `from` does not copy in; should be tofrom
        .run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&acc, i); // reads the uninitialised CV
                k.write(&acc, i, v + k.read(&x, i));
            });
        });
    let _ = rt.read(&acc, 0);
}

fn b025(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target()
        .map(Map::to_section(&a, 4, N)) // BUG: offset 4 + len N > N
        .run(move |k| {
            k.for_each(4..N, |k, i| {
                let _ = k.read(&a, i);
            });
        });
}

/// Fig. 2 top (DRACC_OMP_026): `map(to: a)` should be `tofrom`.
fn b026(rt: &Runtime) {
    let a = rt.alloc_init::<i64>("a", &[1; N]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    let _ = rt.read(&a, N / 2); // stale: still 1 on the host
}

fn b027(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_data().map(Map::to(&a)).scope(|rt| {
        // BUG: region maps `to` only
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 2.0);
            });
        });
    });
    let _ = rt.read(&a, 3); // stale
}

fn b028(rt: &Runtime) {
    let a = rt.alloc::<f64>("a", N);
    rt.target()
        .map(Map::from_section(&a, 0, N + 8)) // BUG: copy-back overflows the OV
        .run(move |k| {
            k.for_each(0..N, |k, i| k.write(&a, i, i as f64));
        });
    let _ = rt.read(&a, 0);
}

fn b029(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target()
        .map(Map::tofrom_section(&a, N / 2, N)) // BUG: straddles the end
        .run(move |k| {
            k.for_each(N / 2..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
}

fn b030(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to_section(&a, 0, N + 8)]); // BUG
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..N, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
}

fn b031(rt: &Runtime) {
    let a = rt.alloc::<f64>("a", N);
    // BUG: the unstructured mapping allocates (and later copies back) an
    // oversized section; the exit transfer writes past the OV.
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::alloc_section(&a, 0, N + 8)]);
    rt.target().map(Map::alloc(&a)).run(move |k| {
        k.for_each(0..N, |k, i| k.write(&a, i, 1.0));
    });
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::from(&a)]);
    let _ = rt.read(&a, 0);
}

fn b032(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 100.0);
            });
        });
        // BUG: missing rt.update_from(&a) here.
        let _ = rt.read(&a, 7); // stale inside the region
    });
}

fn b033(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let out = rt.alloc::<f64>("out", N);
    rt.target_data().map(Map::to(&a)).map(Map::from(&out)).scope(|rt| {
        for i in 0..N {
            rt.write(&a, i, -1.0); // host rewrites the input
        }
        // BUG: missing rt.update_to(&a); the inner map(to) is refcount-suppressed.
        rt.target().map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i); // stale CV
                k.write(&out, i, v);
            });
        });
    });
    let _ = rt.read(&out, 0);
}

/// DRACC_OMP_034: the transfer that should initialise the CV is a staged
/// `target update to` of a *never-initialised* OV — the kernel's read is
/// a UUM, invisible to allocator-interception definedness tools.
fn b034(rt: &Runtime) {
    let coeff = rt.alloc::<f64>("coeff", N); // BUG: never initialised
    let out = rt.alloc::<f64>("out", N);
    rt.target_data().map(Map::alloc(&coeff)).map(Map::from(&out)).scope(|rt| {
        rt.update_to(&coeff); // staged through the runtime's bounce buffer
        rt.target().map(Map::alloc(&coeff)).map(Map::from(&out)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&coeff, i); // UUM
                k.write(&out, i, v * 2.0);
            });
        });
    });
    let _ = rt.read(&out, 0);
}

fn b049(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 3.0);
    let out = rt.alloc::<f64>("out", N);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::alloc(&a)]); // BUG: should be `to`
    rt.target().map(Map::alloc(&a)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i); // uninitialised CV
            k.write(&out, i, v);
        });
    });
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
    let _ = rt.read(&out, 0);
}

fn b050(rt: &Runtime) {
    let a = rt.alloc::<f64>("a", N); // BUG: host never initialises `a`
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i); // garbage faithfully copied in
            k.write(&out, i, v + 1.0);
        });
    });
    let _ = rt.read(&out, 0);
}

fn b051(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    // Kernel 1 computes into the CV (persisting it was intended).
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    rt.target().map(Map::to(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 10.0);
        });
    });
    // BUG: releasing here destroys kernel 1's results.
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::alloc(&a)]);
    rt.target().map(Map::alloc(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let _ = k.read(&a, i); // fresh, uninitialised CV
        });
    });
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
}
