//! # arbalest-dracc
//!
//! A DRACC-like micro-benchmark suite: 56 small target-offloading
//! programs written against the simulated runtime, mirroring the DRACC
//! 1.0 OpenMP set the paper evaluates (§VI-C).
//!
//! The 16 buggy benchmarks sit at the paper's IDs with the paper's
//! observable effects (Table III):
//!
//! | IDs                    | Effect |
//! |------------------------|--------|
//! | 22, 24, 49, 50, 51     | UUM    |
//! | 23, 25, 28, 29, 30, 31 | BO     |
//! | 26, 27, 32, 33, 34     | USD (34 manifests as a kernel-side UUM) |
//!
//! The other 40 are correct programs covering every construct the runtime
//! offers; they defend the no-false-positive claim. Every correct
//! benchmark verifies its own output, so the suite also regression-tests
//! the runtime's data movement.

#![warn(missing_docs)]

mod buggy;
mod correct;
pub mod ir_models;

use arbalest_offload::prelude::*;

/// Elements per array in the benchmarks (kept small: tools multiply cost).
pub const N: usize = 128;

/// One DRACC-style benchmark.
pub struct Benchmark {
    /// `DRACC_OMP_<id>`.
    pub id: u32,
    /// Short name.
    pub name: &'static str,
    /// Seeded bug's observable effect; `None` for correct benchmarks.
    pub expected: Option<Effect>,
    /// What the benchmark exercises / what the bug is.
    pub description: &'static str,
    runner: fn(&Runtime),
}

impl Benchmark {
    /// Execute against a runtime (attach tools to it first).
    pub fn run(&self, rt: &Runtime) {
        (self.runner)(rt);
        rt.taskwait();
    }

    /// `DRACC_OMP_0NN` display id.
    pub fn dracc_id(&self) -> String {
        format!("DRACC_OMP_{:03}", self.id)
    }
}

/// All 56 benchmarks, ascending by id.
pub fn all() -> Vec<Benchmark> {
    let mut v = correct::benchmarks();
    v.extend(buggy::benchmarks());
    v.sort_by_key(|b| b.id);
    debug_assert_eq!(v.len(), 56);
    v
}

/// The 16 buggy benchmarks.
pub fn buggy() -> Vec<Benchmark> {
    buggy::benchmarks()
}

/// The 40 correct benchmarks.
pub fn correct() -> Vec<Benchmark> {
    correct::benchmarks()
}

/// Look up a benchmark by id.
pub fn by_id(id: u32) -> Option<Benchmark> {
    all().into_iter().find(|b| b.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_56_benchmarks_with_unique_ids() {
        let v = all();
        assert_eq!(v.len(), 56);
        let mut ids: Vec<u32> = v.iter().map(|b| b.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 56);
        assert_eq!(ids.first(), Some(&1));
        assert_eq!(ids.last(), Some(&56));
    }

    #[test]
    fn buggy_ids_match_table_iii() {
        let mut ids: Vec<u32> = buggy().iter().map(|b| b.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 49, 50, 51]);
    }

    #[test]
    fn effects_match_table_iii_rows() {
        for b in buggy() {
            let expected = match b.id {
                22 | 24 | 49 | 50 | 51 => Effect::Uum,
                23 | 25 | 28 | 29 | 30 | 31 => Effect::Bo,
                26 | 27 | 32 | 33 => Effect::Usd,
                34 => Effect::Uum, // grouped in the USD row; manifests as kernel UUM (§VI-C)
                _ => unreachable!(),
            };
            assert_eq!(b.expected, Some(expected), "{}", b.dracc_id());
        }
    }

    #[test]
    fn all_benchmarks_run_without_tools() {
        // Smoke: every benchmark completes on a bare runtime.
        for b in all() {
            let rt = Runtime::new(Config::default());
            b.run(&rt);
        }
    }
}
