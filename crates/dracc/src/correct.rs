//! The 40 correct benchmarks — mapping-issue-free programs covering every
//! construct the runtime offers. They defend the paper's no-false-positive
//! observation ("none of the five tools report a false positive when the
//! benchmark is free of data mapping issues", §VI-C) and double as
//! end-to-end regression tests of the runtime's data movement: each one
//! asserts its own output.

use crate::{Benchmark, N};
use arbalest_offload::prelude::*;

macro_rules! bench {
    ($id:expr, $name:expr, $desc:expr, $f:ident) => {
        Benchmark { id: $id, name: $name, expected: None, description: $desc, runner: $f }
    };
}

pub(crate) fn benchmarks() -> Vec<Benchmark> {
    vec![
        bench!(1, "vec_add_tofrom", "element-wise add with map(tofrom)", c01),
        bench!(2, "vec_scale_to_from", "scale with map(to) input and map(from) output", c02),
        bench!(3, "dot_reduce", "dot product via a team reduction", c03),
        bench!(4, "saxpy", "saxpy with mixed map types", c04),
        bench!(5, "stencil_1d", "3-point stencil reading neighbours in bounds", c05),
        bench!(6, "middle_section", "map only the middle half as an array section", c06),
        bench!(7, "update_to_between_kernels", "host rewrite + target update to, then reuse", c07),
        bench!(8, "update_from_mid_region", "host read inside a data region after update from", c08),
        bench!(9, "persistent_enter_exit", "enter/exit data keeping a CV across 3 kernels", c09),
        bench!(10, "alloc_scratch", "device-only scratch fully initialised by the kernel", c10),
        bench!(11, "nowait_wait_handle", "nowait kernel synchronised with its handle", c11),
        bench!(12, "two_nowait_disjoint", "two nowait kernels on disjoint data + taskwait", c12),
        bench!(13, "depend_chain", "dependent nowait kernels forming a chain", c13),
        bench!(14, "host_device_target", "target region offloaded to the host device", c14),
        bench!(15, "i32_elements", "4-byte element types end to end", c15),
        bench!(16, "matmul_small", "small dense matrix multiply", c16),
        bench!(17, "max_reduce", "maximum reduction over the team", c17),
        bench!(18, "triad", "stream triad a = b + s*c", c18),
        bench!(19, "release_after_read_only", "read-only kernels then exit release", c19),
        bench!(20, "delete_cleanup", "map(delete) to tear down a persistent CV", c20),
        bench!(21, "refcount_nesting", "nested tofrom maps rely on reference counting", c21),
        bench!(35, "histogram_partials", "histogram via per-chunk partials merged serially", c35),
        bench!(36, "prefix_sum_serial", "sequential in-kernel prefix sum", c36),
        bench!(37, "double_buffer_updates", "ping-pong buffers kept coherent with updates", c37),
        bench!(38, "gather_indices", "gather through an index array", c38),
        bench!(39, "scatter_disjoint", "parallel scatter to disjoint locations", c39),
        bench!(40, "mixed_map_types", "to + from + alloc + tofrom in one construct", c40),
        bench!(41, "map_unmap_churn", "repeated map/unmap cycles re-transfer correctly", c41),
        bench!(42, "from_full_write", "from-mapped output fully written by the kernel", c42),
        bench!(43, "host_write_with_update", "host writes between kernels with update to", c43),
        bench!(44, "round_trip_updates", "device→host→device round trip via updates", c44),
        bench!(45, "u8_elements", "byte-sized elements (1-byte accesses)", c45),
        bench!(46, "f32_elements", "f32 elements (4-byte float accesses)", c46),
        bench!(47, "sum_into_scalar", "team reduction into a from-mapped scalar", c47),
        bench!(48, "three_stage_pipeline", "a→b→c pipeline across three kernels", c48),
        bench!(52, "depend_in_out_mix", "readers and writers ordered by depend clauses", c52),
        bench!(53, "nowait_disjoint_halves", "two nowait kernels writing disjoint halves", c53),
        bench!(54, "immediate_wait", "nowait kernel waited immediately", c54),
        bench!(55, "update_ping_pong", "alternating update to/from keeping views coherent", c55),
        bench!(56, "mini_cg_step", "one correct conjugate-gradient-style step", c56),
    ]
}

fn c01(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc_with::<f64>("b", N, |i| 2.0 * i as f64);
    rt.target().map(Map::tofrom(&a)).map(Map::to(&b)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i) + k.read(&b, i);
            k.write(&a, i, v);
        });
    });
    for i in 0..N {
        assert_eq!(rt.read(&a, i), 3.0 * i as f64);
    }
}

fn c02(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |i| i as f64);
    let y = rt.alloc::<f64>("y", N);
    rt.target().map(Map::to(&x)).map(Map::from(&y)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&y, i, 5.0 * k.read(&x, i)));
    });
    assert_eq!(rt.read(&y, 10), 50.0);
}

fn c03(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |_| 2.0);
    let y = rt.alloc_with::<f64>("y", N, |_| 3.0);
    let out = rt.alloc::<f64>("out", 1);
    rt.target().map(Map::to(&x)).map(Map::to(&y)).map(Map::from(&out)).run(move |k| {
        let dot = k.par_reduce(0..N, 0.0, |k, i| k.read(&x, i) * k.read(&y, i), |a, b| a + b);
        k.write(&out, 0, dot);
    });
    assert_eq!(rt.read(&out, 0), 6.0 * N as f64);
}

fn c04(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |i| i as f64);
    let y = rt.alloc_with::<f64>("y", N, |_| 1.0);
    rt.target().map(Map::to(&x)).map(Map::tofrom(&y)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = 2.0 * k.read(&x, i) + k.read(&y, i);
            k.write(&y, i, v);
        });
    });
    assert_eq!(rt.read(&y, 4), 9.0);
}

fn c05(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc::<f64>("b", N);
    rt.target().map(Map::to(&a)).map(Map::from(&b)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let l = if i > 0 { k.read(&a, i - 1) } else { 0.0 };
            let c = k.read(&a, i);
            let r = if i + 1 < N { k.read(&a, i + 1) } else { 0.0 };
            k.write(&b, i, (l + c + r) / 3.0);
        });
    });
    assert_eq!(rt.read(&b, 5), 5.0);
}

fn c06(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let (lo, len) = (N / 4, N / 2);
    rt.target().map(Map::tofrom_section(&a, lo, len)).run(move |k| {
        k.for_each(lo..lo + len, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1000.0);
        });
    });
    assert_eq!(rt.read(&a, 0), 0.0);
    assert_eq!(rt.read(&a, N / 4), 1000.0 + (N / 4) as f64);
    assert_eq!(rt.read(&a, N - 1), (N - 1) as f64);
}

fn c07(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    let out = rt.alloc::<f64>("out", N);
    rt.target_data().map(Map::to(&a)).map(Map::from(&out)).scope(|rt| {
        for i in 0..N {
            rt.write(&a, i, 7.0);
        }
        rt.update_to(&a); // the fix benchmark 33 is missing
        rt.target().map(Map::to(&a)).map(Map::from(&out)).run(move |k| {
            k.par_for(0..N, |k, i| k.write(&out, i, k.read(&a, i)));
        });
    });
    assert_eq!(rt.read(&out, 9), 7.0);
}

fn c08(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 100.0);
            });
        });
        rt.update_from(&a); // the fix benchmark 32 is missing
        assert_eq!(rt.read(&a, 7), 107.0);
    });
}

fn c09(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 0.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    for _ in 0..3 {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
    }
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::from(&a)]);
    assert_eq!(rt.read(&a, 0), 3.0);
}

fn c10(rt: &Runtime) {
    let scratch = rt.alloc::<f64>("scratch", N);
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::alloc(&scratch)).map(Map::from(&out)).run(move |k| {
        // The kernel fully initialises the scratch before using it —
        // map(alloc) is correct here.
        k.for_each(0..N, |k, i| k.write(&scratch, i, (i * i) as f64));
        k.par_for(0..N, |k, i| k.write(&out, i, k.read(&scratch, i) + 1.0));
    });
    assert_eq!(rt.read(&out, 3), 10.0);
}

fn c11(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 4.0);
        });
    });
    h.wait();
    assert_eq!(rt.read(&a, 11), 4.0);
}

fn c12(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    let b = rt.alloc_with::<f64>("b", N, |_| 2.0);
    rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.for_each(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1.0);
        });
    });
    rt.target().map(Map::tofrom(&b)).nowait().run(move |k| {
        k.for_each(0..N, |k, i| {
            let v = k.read(&b, i);
            k.write(&b, i, v + 1.0);
        });
    });
    rt.taskwait();
    assert_eq!(rt.read(&a, 0) + rt.read(&b, 0), 5.0);
}

fn c13(rt: &Runtime) {
    let a = rt.alloc_with::<i64>("a", N, |_| 0);
    for _ in 0..5 {
        rt.target().map(Map::tofrom(&a)).depend(Depend::write(&a)).nowait().run(move |k| {
            k.for_each(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1);
            });
        });
    }
    rt.taskwait();
    assert_eq!(rt.read(&a, N - 1), 5);
}

fn c14(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc::<f64>("b", N);
    rt.target().on_device(DeviceId::HOST).run(move |k| {
        k.for_each(0..N, |k, i| k.write(&b, i, 2.0 * k.read(&a, i)));
    });
    assert_eq!(rt.read(&b, 6), 12.0);
}

fn c15(rt: &Runtime) {
    let a = rt.alloc_with::<i32>("a", N, |i| i as i32);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * 3);
        });
    });
    assert_eq!(rt.read(&a, 9), 27);
}

fn c16(rt: &Runtime) {
    const M: usize = 12;
    let a = rt.alloc_with::<f64>("A", M * M, |i| ((i % 5) + 1) as f64);
    let b = rt.alloc_with::<f64>("B", M * M, |i| ((i % 3) + 1) as f64);
    let c = rt.alloc::<f64>("C", M * M);
    rt.target().map(Map::to(&a)).map(Map::to(&b)).map(Map::from(&c)).run(move |k| {
        k.par_for(0..M, |k, i| {
            for j in 0..M {
                let mut acc = 0.0;
                for l in 0..M {
                    acc += k.read(&a, i * M + l) * k.read(&b, l * M + j);
                }
                k.write(&c, i * M + j, acc);
            }
        });
    });
    // Spot-check one element against a host-side recomputation.
    let mut expect = 0.0;
    for l in 0..M {
        expect += rt.read(&a, 2 * M + l) * rt.read(&b, l * M + 3);
    }
    assert_eq!(rt.read(&c, 2 * M + 3), expect);
}

fn c17(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |i| ((i * 37) % N) as f64);
    let out = rt.alloc::<f64>("out", 1);
    rt.target().map(Map::to(&x)).map(Map::from(&out)).run(move |k| {
        let m = k.par_reduce(0..N, f64::NEG_INFINITY, |k, i| k.read(&x, i), f64::max);
        k.write(&out, 0, m);
    });
    assert_eq!(rt.read(&out, 0), (N - 1) as f64);
}

fn c18(rt: &Runtime) {
    let a = rt.alloc::<f64>("a", N);
    let b = rt.alloc_with::<f64>("b", N, |i| i as f64);
    let c = rt.alloc_with::<f64>("c", N, |_| 2.0);
    rt.target().map(Map::from(&a)).map(Map::to(&b)).map(Map::to(&c)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&a, i, k.read(&b, i) + 3.0 * k.read(&c, i)));
    });
    assert_eq!(rt.read(&a, 1), 7.0);
}

fn c19(rt: &Runtime) {
    let table = rt.alloc_with::<f64>("table", N, |i| (i * i) as f64);
    let out = rt.alloc::<f64>("out", N);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&table)]);
    rt.target().map(Map::to(&table)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&out, i, k.read(&table, i)));
    });
    // Kernels never wrote `table`: releasing without copy-back is correct,
    // and the host's copy is still the valid one.
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&table)]);
    assert_eq!(rt.read(&table, 4), 16.0);
    assert_eq!(rt.read(&out, 4), 16.0);
}

fn c20(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]); // refcount 2
    rt.target().map(Map::to(&a)).run(move |k| {
        k.for_each(0..N, |k, i| {
            let _ = k.read(&a, i);
        });
    });
    // delete zeroes the refcount in one shot.
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::delete(&a)]);
    assert!(!rt.is_present(DeviceId::ACCEL0, &a));
    assert_eq!(rt.read(&a, 0), 1.0);
}

fn c21(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        for _ in 0..2 {
            rt.target().map(Map::tofrom(&a)).run(move |k| {
                k.par_for(0..N, |k, i| {
                    let v = k.read(&a, i);
                    k.write(&a, i, v * 2.0);
                });
            });
        }
    });
    assert_eq!(rt.read(&a, 0), 4.0);
}

fn c35(rt: &Runtime) {
    const BINS: usize = 8;
    let data = rt.alloc_with::<i64>("data", N, |i| ((i * 13) % BINS) as i64);
    let hist = rt.alloc::<i64>("hist", BINS);
    rt.target().map(Map::to(&data)).map(Map::from(&hist)).run(move |k| {
        // Serial tally on the kernel task avoids update races by design.
        k.for_each(0..BINS, |k, b| k.write(&hist, b, 0));
        k.for_each(0..N, |k, i| {
            let bin = (k.read(&data, i) as usize) % BINS;
            let v = k.read(&hist, bin);
            k.write(&hist, bin, v + 1);
        });
    });
    let total: i64 = (0..BINS).map(|b| rt.read(&hist, b)).sum();
    assert_eq!(total, N as i64);
}

fn c36(rt: &Runtime) {
    let a = rt.alloc_with::<i64>("a", N, |_| 1);
    rt.target().map(Map::tofrom(&a)).run(move |k| {
        k.for_each(1..N, |k, i| {
            let v = k.read(&a, i - 1) + k.read(&a, i);
            k.write(&a, i, v);
        });
    });
    assert_eq!(rt.read(&a, N - 1), N as i64);
}

fn c37(rt: &Runtime) {
    let cur = rt.alloc_with::<f64>("cur", N, |i| i as f64);
    let next = rt.alloc::<f64>("next", N);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&cur), Map::alloc(&next)]);
    for step in 0..2 {
        let (src, dst) = if step % 2 == 0 { (cur, next) } else { (next, cur) };
        rt.target().map(Map::to(&src)).map(Map::alloc(&dst)).run(move |k| {
            k.par_for(0..N, |k, i| k.write(&dst, i, k.read(&src, i) + 1.0));
        });
    }
    // Results live in `cur` after an even number of steps.
    rt.update_from(&cur);
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&cur), Map::release(&next)]);
    assert_eq!(rt.read(&cur, 5), 7.0);
}

fn c38(rt: &Runtime) {
    let src = rt.alloc_with::<f64>("src", N, |i| (i * 10) as f64);
    let idx = rt.alloc_with::<i64>("idx", N, |i| ((i * 7) % N) as i64);
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::to(&src)).map(Map::to(&idx)).map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| {
            let j = k.read(&idx, i) as usize;
            k.write(&out, i, k.read(&src, j));
        });
    });
    assert_eq!(rt.read(&out, 1), 70.0);
}

fn c39(rt: &Runtime) {
    let out = rt.alloc::<i64>("out", N);
    rt.target().map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&out, (i * 5) % N, i as i64));
    });
    // (i*5) mod N is a permutation when gcd(5, N) == 1; N = 128 → gcd 1.
    let mut seen = [false; N];
    for i in 0..N {
        let v = rt.read(&out, i) as usize;
        assert!(!seen[v]);
        seen[v] = true;
    }
}

fn c40(rt: &Runtime) {
    let input = rt.alloc_with::<f64>("input", N, |i| i as f64);
    let output = rt.alloc::<f64>("output", N);
    let scratch = rt.alloc::<f64>("scratch", N);
    let state = rt.alloc_with::<f64>("state", N, |_| 0.5);
    rt.target()
        .map(Map::to(&input))
        .map(Map::from(&output))
        .map(Map::alloc(&scratch))
        .map(Map::tofrom(&state))
        .run(move |k| {
            k.for_each(0..N, |k, i| k.write(&scratch, i, 2.0 * k.read(&input, i)));
            k.par_for(0..N, |k, i| {
                let s = k.read(&state, i) + 1.0;
                k.write(&state, i, s);
                k.write(&output, i, k.read(&scratch, i) + s);
            });
        });
    assert_eq!(rt.read(&state, 0), 1.5);
    assert_eq!(rt.read(&output, 3), 6.0 + 1.5);
}

fn c41(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 0.0);
    for round in 0..4 {
        rt.target().map(Map::tofrom(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + (round + 1) as f64);
            });
        });
    }
    assert_eq!(rt.read(&a, 2), 10.0);
}

fn c42(rt: &Runtime) {
    let out = rt.alloc::<f64>("out", N);
    rt.target().map(Map::from(&out)).run(move |k| {
        k.par_for(0..N, |k, i| k.write(&out, i, (i % 3) as f64));
    });
    let sum: f64 = (0..N).map(|i| rt.read(&out, i)).sum();
    assert!((sum - (N as f64 / 3.0 * 3.0)).abs() < N as f64);
}

fn c43(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    for round in 0..2 {
        for i in 0..N {
            rt.write(&a, i, (round + 2) as f64);
        }
        rt.update_to(&a);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.for_each(0..N, |k, i| {
                let _ = k.read(&a, i);
            });
        });
    }
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
    assert_eq!(rt.read(&a, 0), 3.0);
}

fn c44(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 2.0);
            });
        });
        rt.update_from(&a);
        for i in 0..N {
            let v = rt.read(&a, i);
            rt.write(&a, i, v + 1.0);
        }
        rt.update_to(&a);
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v * 10.0);
            });
        });
    });
    assert_eq!(rt.read(&a, 0), 30.0);
}

fn c45(rt: &Runtime) {
    let bytes = rt.alloc_with::<u8>("bytes", N, |i| (i % 251) as u8);
    rt.target().map(Map::tofrom(&bytes)).run(move |k| {
        k.for_each(0..N, |k, i| {
            let v = k.read(&bytes, i);
            k.write(&bytes, i, v.wrapping_add(1));
        });
    });
    assert_eq!(rt.read(&bytes, 9), 10);
}

fn c46(rt: &Runtime) {
    let x = rt.alloc_with::<f32>("x", N, |i| i as f32);
    rt.target().map(Map::tofrom(&x)).run(move |k| {
        k.for_each(0..N, |k, i| {
            let v = k.read(&x, i);
            k.write(&x, i, v * 0.5);
        });
    });
    assert_eq!(rt.read(&x, 8), 4.0);
}

fn c47(rt: &Runtime) {
    let x = rt.alloc_with::<f64>("x", N, |i| (i % 10) as f64);
    let total = rt.alloc::<f64>("total", 1);
    rt.target().map(Map::to(&x)).map(Map::from(&total)).run(move |k| {
        let s = k.par_reduce(0..N, 0.0, |k, i| k.read(&x, i), |a, b| a + b);
        k.write(&total, 0, s);
    });
    let expect: f64 = (0..N).map(|i| (i % 10) as f64).sum();
    assert_eq!(rt.read(&total, 0), expect);
}

fn c48(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |i| i as f64);
    let b = rt.alloc::<f64>("b", N);
    let c = rt.alloc::<f64>("c", N);
    rt.target_data().map(Map::to(&a)).map(Map::alloc(&b)).map(Map::from(&c)).scope(|rt| {
        rt.target().map(Map::to(&a)).map(Map::alloc(&b)).run(move |k| {
            k.par_for(0..N, |k, i| k.write(&b, i, k.read(&a, i) + 1.0));
        });
        rt.target().map(Map::alloc(&b)).map(Map::from(&c)).run(move |k| {
            k.par_for(0..N, |k, i| k.write(&c, i, 2.0 * k.read(&b, i)));
        });
    });
    assert_eq!(rt.read(&c, 4), 10.0);
}

fn c52(rt: &Runtime) {
    let a = rt.alloc_with::<i64>("a", N, |_| 1);
    let b = rt.alloc::<i64>("b", N);
    // Writer of a → readers of a (writers of b) → host.
    rt.target().map(Map::tofrom(&a)).depend(Depend::write(&a)).nowait().run(move |k| {
        k.for_each(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v + 1);
        });
    });
    rt.target()
        .map(Map::to(&a))
        .map(Map::tofrom(&b))
        .depend(Depend::read(&a))
        .depend(Depend::write(&b))
        .nowait()
        .run(move |k| {
            k.for_each(0..N, |k, i| k.write(&b, i, k.read(&a, i) * 10));
        });
    rt.taskwait();
    assert_eq!(rt.read(&b, 0), 20);
}

fn c53(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 1.0);
    rt.target_data().map(Map::tofrom(&a)).scope(|rt| {
        rt.target().map(Map::to(&a)).nowait().run(move |k| {
            k.for_each(0..N / 2, |k, i| k.write(&a, i, 10.0));
        });
        rt.target().map(Map::to(&a)).nowait().run(move |k| {
            k.for_each(N / 2..N, |k, i| k.write(&a, i, 20.0));
        });
        rt.taskwait(); // before the region's exit transfer
    });
    assert_eq!(rt.read(&a, 0), 10.0);
    assert_eq!(rt.read(&a, N - 1), 20.0);
}

fn c54(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 2.0);
    let h = rt.target().map(Map::tofrom(&a)).nowait().run(move |k| {
        k.par_for(0..N, |k, i| {
            let v = k.read(&a, i);
            k.write(&a, i, v * v);
        });
    });
    h.wait();
    assert_eq!(rt.read(&a, 3), 4.0);
}

fn c55(rt: &Runtime) {
    let a = rt.alloc_with::<f64>("a", N, |_| 0.0);
    rt.target_enter_data(DeviceId::ACCEL0, &[Map::to(&a)]);
    for _ in 0..3 {
        rt.target().map(Map::to(&a)).run(move |k| {
            k.par_for(0..N, |k, i| {
                let v = k.read(&a, i);
                k.write(&a, i, v + 1.0);
            });
        });
        rt.update_from(&a);
        for i in 0..N {
            let v = rt.read(&a, i);
            rt.write(&a, i, v + 1.0);
        }
        rt.update_to(&a);
    }
    rt.target_exit_data(DeviceId::ACCEL0, &[Map::release(&a)]);
    assert_eq!(rt.read(&a, 0), 6.0);
}

fn c56(rt: &Runtime) {
    // One CG-style step: q = A p (tridiagonal), alpha = (r·r)/(p·q),
    // x += alpha p.
    let p = rt.alloc_with::<f64>("p", N, |_| 1.0);
    let r = rt.alloc_with::<f64>("r", N, |_| 2.0);
    let q = rt.alloc::<f64>("q", N);
    let x = rt.alloc_with::<f64>("x", N, |_| 0.0);
    let scalars = rt.alloc::<f64>("scalars", 2);
    rt.target_data()
        .map(Map::to(&p))
        .map(Map::to(&r))
        .map(Map::alloc(&q))
        .map(Map::tofrom(&x))
        .map(Map::from(&scalars))
        .scope(|rt| {
            rt.target().map(Map::to(&p)).map(Map::alloc(&q)).run(move |k| {
                k.par_for(0..N, |k, i| {
                    let l = if i > 0 { k.read(&p, i - 1) } else { 0.0 };
                    let c = k.read(&p, i);
                    let rr = if i + 1 < N { k.read(&p, i + 1) } else { 0.0 };
                    k.write(&q, i, -l + 2.0 * c - rr);
                });
            });
            rt.target()
                .map(Map::to(&r))
                .map(Map::to(&p))
                .map(Map::alloc(&q))
                .map(Map::from(&scalars))
                .run(move |k| {
                    let rr = k.par_reduce(0..N, 0.0, |k, i| {
                        let v = k.read(&r, i);
                        v * v
                    }, |a, b| a + b);
                    let pq = k.par_reduce(0..N, 0.0, |k, i| k.read(&p, i) * k.read(&q, i), |a, b| a + b);
                    k.write(&scalars, 0, rr);
                    k.write(&scalars, 1, pq);
                });
            rt.update_from(&scalars);
            let alpha = rt.read(&scalars, 0) / rt.read(&scalars, 1).max(1e-12);
            rt.target().map(Map::to(&p)).map(Map::tofrom(&x)).run(move |k| {
                k.par_for(0..N, |k, i| {
                    let v = k.read(&x, i) + alpha * k.read(&p, i);
                    k.write(&x, i, v);
                });
            });
        });
    assert!(rt.read(&x, N / 2).is_finite());
    assert!(rt.read(&x, N / 2) != 0.0);
}
