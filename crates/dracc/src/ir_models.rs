//! Hand-authored IR descriptions of all 56 DRACC benchmarks.
//!
//! Each model mirrors the runtime program in `correct.rs` / `buggy.rs`:
//! the same buffer registrations (name, element size, length — checked by
//! the `ir_matches_runtime` test), the same construct sequence, and
//! may/must access sets that over-approximate every access the runtime
//! program performs (checked by the trace-replay property test). Loops in
//! the source become unrolled construct sequences (the iteration counts
//! are small constants); host verification loops become whole-buffer host
//! reads, which is sound because a correct benchmark only verifies data
//! that is coherent on the host.
//!
//! One deliberate divergence: `DRACC_OMP_050`'s input array is declared
//! with *data-dependent* host initialisation ([`arbalest_ir::Certainty::May`])
//! rather than "never initialised". That models the real DRACC program,
//! where the array is filled from program input — exactly the case §VI-G
//! of the paper says a static tool cannot decide. The static checker
//! accordingly demotes 050's finding to a `may` diagnostic, while the
//! other fifteen seeded bugs stay `must`.

use crate::N;
use arbalest_ir::{Binding, BufId, Expr, MapClause, ParamId, Program, ProgramBuilder, Sect, Trip};
use arbalest_offload::mapping::MapType;

const NE: u64 = N as u64;

fn mc(buf: BufId, map_type: MapType, sect: Sect) -> MapClause {
    MapClause { buf, map_type, sect }
}
fn to(buf: BufId) -> MapClause {
    mc(buf, MapType::To, Sect::Full)
}
fn from(buf: BufId) -> MapClause {
    mc(buf, MapType::From, Sect::Full)
}
fn alloc(buf: BufId) -> MapClause {
    mc(buf, MapType::Alloc, Sect::Full)
}
fn release(buf: BufId) -> MapClause {
    mc(buf, MapType::Release, Sect::Full)
}
fn delete(buf: BufId) -> MapClause {
    mc(buf, MapType::Delete, Sect::Full)
}
fn to_sec(buf: BufId, start: u64, len: u64) -> MapClause {
    mc(buf, MapType::To, Sect::Elems { start, len })
}
fn alloc_sec(buf: BufId, start: u64, len: u64) -> MapClause {
    mc(buf, MapType::Alloc, Sect::Elems { start, len })
}

fn pb(id: u32) -> ProgramBuilder {
    ProgramBuilder::new(&format!("DRACC_OMP_{id:03}"))
}

// ---------------------------------------------------------------- correct

fn c01() -> Program {
    let mut p = pb(1);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer_init("b", 8, NE);
    p.target().map_tofrom(a).map_to(b).reads(a).reads(b).writes(a).done();
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c02() -> Program {
    let mut p = pb(2);
    let x = p.buffer_init("x", 8, NE);
    let y = p.buffer("y", 8, NE);
    p.target().map_to(x).map_from(y).reads(x).writes(y).done();
    p.host_read(y);
    p.taskwait();
    p.build()
}

fn c03() -> Program {
    let mut p = pb(3);
    let x = p.buffer_init("x", 8, NE);
    let y = p.buffer_init("y", 8, NE);
    let out = p.buffer("out", 8, 1);
    p.target().map_to(x).map_to(y).map_from(out).reads(x).reads(y).writes(out).done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c04() -> Program {
    let mut p = pb(4);
    let x = p.buffer_init("x", 8, NE);
    let y = p.buffer_init("y", 8, NE);
    p.target().map_to(x).map_tofrom(y).reads(x).reads(y).writes(y).done();
    p.host_read(y);
    p.taskwait();
    p.build()
}

fn c05() -> Program {
    let mut p = pb(5);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer("b", 8, NE);
    p.target().map_to(a).map_from(b).reads(a).writes(b).done();
    p.host_read(b);
    p.taskwait();
    p.build()
}

fn c06() -> Program {
    let mut p = pb(6);
    let a = p.buffer_init("a", 8, NE);
    let (s, l) = (NE / 4, NE / 2);
    p.target()
        .map_tofrom_sec(a, s, l)
        .reads_sec(a, s, l)
        .writes_sec(a, s, l)
        .done();
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c07() -> Program {
    let mut p = pb(7);
    let a = p.buffer_init("a", 8, NE);
    let out = p.buffer("out", 8, NE);
    p.data().map_to(a).map_from(out).scope(|p| {
        p.host_write(a);
        p.update_to(a);
        p.target().map_to(a).map_from(out).reads(a).writes(out).done();
    });
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c08() -> Program {
    let mut p = pb(8);
    let a = p.buffer_init("a", 8, NE);
    p.data().map_tofrom(a).scope(|p| {
        p.target().map_to(a).reads(a).writes(a).done();
        p.update_from(a);
        p.host_read(a);
    });
    p.taskwait();
    p.build()
}

fn s09() -> (Program, ParamId) {
    let mut p = pb(9);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.enter_data(vec![to(a)]);
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.target().map_to(a).reads(a).writes(a).done();
    });
    p.exit_data(vec![from(a)]);
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c10() -> Program {
    let mut p = pb(10);
    let scratch = p.buffer("scratch", 8, NE);
    let out = p.buffer("out", 8, NE);
    p.target()
        .map_alloc(scratch)
        .map_from(out)
        .writes(scratch)
        .reads(scratch)
        .writes(out)
        .done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c11() -> Program {
    let mut p = pb(11);
    let a = p.buffer_init("a", 8, NE);
    let t = p.target().map_tofrom(a).nowait().reads(a).writes(a).done();
    p.wait(t);
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c12() -> Program {
    let mut p = pb(12);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer_init("b", 8, NE);
    p.target().map_tofrom(a).nowait().reads(a).writes(a).done();
    p.target().map_tofrom(b).nowait().reads(b).writes(b).done();
    p.taskwait();
    p.host_read(a);
    p.host_read(b);
    p.taskwait();
    p.build()
}

fn s13() -> (Program, ParamId) {
    let mut p = pb(13);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.target()
            .map_tofrom(a)
            .nowait()
            .depend_write(a)
            .reads(a)
            .writes(a)
            .done();
    });
    p.taskwait();
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c14() -> Program {
    use arbalest_offload::addr::DeviceId;
    let mut p = pb(14);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer("b", 8, NE);
    p.target().on_device(DeviceId::HOST).reads(a).writes(b).done();
    p.host_read(b);
    p.taskwait();
    p.build()
}

fn c15() -> Program {
    let mut p = pb(15);
    let a = p.buffer_init("a", 4, NE);
    p.target().map_tofrom(a).reads(a).writes(a).done();
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c16() -> Program {
    let mut p = pb(16);
    let m = 12u64;
    let a = p.buffer_init("A", 8, m * m);
    let b = p.buffer_init("B", 8, m * m);
    let c = p.buffer("C", 8, m * m);
    p.target().map_to(a).map_to(b).map_from(c).reads(a).reads(b).writes(c).done();
    p.host_read(a);
    p.host_read(b);
    p.host_read(c);
    p.taskwait();
    p.build()
}

fn c17() -> Program {
    let mut p = pb(17);
    let x = p.buffer_init("x", 8, NE);
    let out = p.buffer("out", 8, 1);
    p.target().map_to(x).map_from(out).reads(x).writes(out).done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c18() -> Program {
    let mut p = pb(18);
    let a = p.buffer("a", 8, NE);
    let b = p.buffer_init("b", 8, NE);
    let c = p.buffer_init("c", 8, NE);
    p.target().map_from(a).map_to(b).map_to(c).reads(b).reads(c).writes(a).done();
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c19() -> Program {
    let mut p = pb(19);
    let table = p.buffer_init("table", 8, NE);
    let out = p.buffer("out", 8, NE);
    p.enter_data(vec![to(table)]);
    p.target().map_to(table).map_from(out).reads(table).writes(out).done();
    p.exit_data(vec![release(table)]);
    p.host_read(table);
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c20() -> Program {
    let mut p = pb(20);
    let a = p.buffer_init("a", 8, NE);
    p.enter_data(vec![to(a)]);
    p.enter_data(vec![to(a)]);
    p.target().map_to(a).reads(a).done();
    p.exit_data(vec![delete(a)]);
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn s21() -> (Program, ParamId) {
    let mut p = pb(21);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.data().map_tofrom(a).scope(|p| {
        p.loop_(Trip(Expr::param(iters)), |p| {
            p.target().map_tofrom(a).reads(a).writes(a).done();
        });
    });
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c35() -> Program {
    let mut p = pb(35);
    let data = p.buffer_init("data", 8, NE);
    let hist = p.buffer("hist", 8, 8);
    p.target()
        .map_to(data)
        .map_from(hist)
        .writes(hist)
        .reads(data)
        .may_reads(hist)
        .may_writes(hist)
        .done();
    p.host_read(hist);
    p.taskwait();
    p.build()
}

fn c36() -> Program {
    let mut p = pb(36);
    let a = p.buffer_init("a", 8, NE);
    p.target().map_tofrom(a).reads(a).writes_sec(a, 1, NE - 1).done();
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c37() -> Program {
    let mut p = pb(37);
    let cur = p.buffer_init("cur", 8, NE);
    let next = p.buffer("next", 8, NE);
    p.enter_data(vec![to(cur), alloc(next)]);
    p.target().map_to(cur).map_alloc(next).reads(cur).writes(next).done();
    p.target().map_to(next).map_alloc(cur).reads(next).writes(cur).done();
    p.update_from(cur);
    p.exit_data(vec![release(cur), release(next)]);
    p.host_read(cur);
    p.taskwait();
    p.build()
}

fn c38() -> Program {
    let mut p = pb(38);
    let src = p.buffer_init("src", 8, NE);
    let idx = p.buffer_init("idx", 8, NE);
    let out = p.buffer("out", 8, NE);
    p.target()
        .map_to(src)
        .map_to(idx)
        .map_from(out)
        .reads(idx)
        .may_reads(src)
        .writes(out)
        .done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c39() -> Program {
    let mut p = pb(39);
    let out = p.buffer("out", 8, NE);
    p.target().map_from(out).writes(out).done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn c40() -> Program {
    let mut p = pb(40);
    let input = p.buffer_init("input", 8, NE);
    let output = p.buffer("output", 8, NE);
    let scratch = p.buffer("scratch", 8, NE);
    let state = p.buffer_init("state", 8, NE);
    p.target()
        .map_to(input)
        .map_from(output)
        .map_alloc(scratch)
        .map_tofrom(state)
        .reads(input)
        .writes(scratch)
        .reads(state)
        .writes(state)
        .reads(scratch)
        .writes(output)
        .done();
    p.host_read(state);
    p.host_read(output);
    p.taskwait();
    p.build()
}

fn s41() -> (Program, ParamId) {
    let mut p = pb(41);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.target().map_tofrom(a).reads(a).writes(a).done();
    });
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c42() -> Program {
    let mut p = pb(42);
    let out = p.buffer("out", 8, NE);
    p.target().map_from(out).writes(out).done();
    p.host_read(out);
    p.taskwait();
    p.build()
}

fn s43() -> (Program, ParamId) {
    let mut p = pb(43);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.enter_data(vec![to(a)]);
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.host_write(a);
        p.update_to(a);
        p.target().map_to(a).reads(a).done();
    });
    p.exit_data(vec![release(a)]);
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c44() -> Program {
    let mut p = pb(44);
    let a = p.buffer_init("a", 8, NE);
    p.data().map_tofrom(a).scope(|p| {
        p.target().map_to(a).reads(a).writes(a).done();
        p.update_from(a);
        p.host_read(a);
        p.host_write(a);
        p.update_to(a);
        p.target().map_to(a).reads(a).writes(a).done();
    });
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c45() -> Program {
    let mut p = pb(45);
    let bytes = p.buffer_init("bytes", 1, NE);
    p.target().map_tofrom(bytes).reads(bytes).writes(bytes).done();
    p.host_read(bytes);
    p.taskwait();
    p.build()
}

fn c46() -> Program {
    let mut p = pb(46);
    let x = p.buffer_init("x", 4, NE);
    p.target().map_tofrom(x).reads(x).writes(x).done();
    p.host_read(x);
    p.taskwait();
    p.build()
}

fn c47() -> Program {
    let mut p = pb(47);
    let x = p.buffer_init("x", 8, NE);
    let total = p.buffer("total", 8, 1);
    p.target().map_to(x).map_from(total).reads(x).writes(total).done();
    p.host_read(total);
    p.taskwait();
    p.build()
}

fn c48() -> Program {
    let mut p = pb(48);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer("b", 8, NE);
    let c = p.buffer("c", 8, NE);
    p.data().map_to(a).map_alloc(b).map_from(c).scope(|p| {
        p.target().map_to(a).map_alloc(b).reads(a).writes(b).done();
        p.target().map_alloc(b).map_from(c).reads(b).writes(c).done();
    });
    p.host_read(c);
    p.taskwait();
    p.build()
}

fn c52() -> Program {
    let mut p = pb(52);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer("b", 8, NE);
    p.target()
        .map_tofrom(a)
        .nowait()
        .depend_write(a)
        .reads(a)
        .writes(a)
        .done();
    p.target()
        .map_to(a)
        .map_tofrom(b)
        .nowait()
        .depend_read(a)
        .depend_write(b)
        .reads(a)
        .writes(b)
        .done();
    p.taskwait();
    p.host_read(b);
    p.taskwait();
    p.build()
}

fn c53() -> Program {
    let mut p = pb(53);
    let a = p.buffer_init("a", 8, NE);
    p.data().map_tofrom(a).scope(|p| {
        p.target().map_to(a).nowait().writes_sec(a, 0, NE / 2).done();
        p.target().map_to(a).nowait().writes_sec(a, NE / 2, NE / 2).done();
        p.taskwait();
    });
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn c54() -> Program {
    let mut p = pb(54);
    let a = p.buffer_init("a", 8, NE);
    let t = p.target().map_tofrom(a).nowait().reads(a).writes(a).done();
    p.wait(t);
    p.host_read(a);
    p.taskwait();
    p.build()
}

fn s55() -> (Program, ParamId) {
    let mut p = pb(55);
    let iters = p.param("iters", 1, Some(64));
    let a = p.buffer_init("a", 8, NE);
    p.enter_data(vec![to(a)]);
    p.loop_(Trip(Expr::param(iters)), |p| {
        p.target().map_to(a).reads(a).writes(a).done();
        p.update_from(a);
        p.host_read(a);
        p.host_write(a);
        p.update_to(a);
    });
    p.exit_data(vec![release(a)]);
    p.host_read(a);
    p.taskwait();
    (p.build(), iters)
}

fn c56() -> Program {
    let mut p = pb(56);
    let pr = p.buffer_init("p", 8, NE);
    let r = p.buffer_init("r", 8, NE);
    let q = p.buffer("q", 8, NE);
    let x = p.buffer_init("x", 8, NE);
    let scalars = p.buffer("scalars", 8, 2);
    p.data()
        .map_to(pr)
        .map_to(r)
        .map_alloc(q)
        .map_tofrom(x)
        .map_from(scalars)
        .scope(|p| {
            p.target().map_to(pr).map_alloc(q).reads(pr).writes(q).done();
            p.target()
                .map_to(r)
                .map_to(pr)
                .map_alloc(q)
                .map_from(scalars)
                .reads(r)
                .reads(pr)
                .reads(q)
                .writes(scalars)
                .done();
            p.update_from(scalars);
            p.host_read(scalars);
            p.target().map_to(pr).map_tofrom(x).reads(x).reads(pr).writes(x).done();
        });
    p.host_read(x);
    p.taskwait();
    p.build()
}

// ------------------------------------------------------------------ buggy

fn b022() -> Program {
    let mut p = pb(22);
    let a = p.buffer_init("a", 8, NE);
    let b = p.buffer_init("b", 8, NE * 8);
    let c = p.buffer_init("c", 8, NE);
    // BUG: `b` is map(alloc) — its host contents never reach the device.
    p.target()
        .map_to(a)
        .map_alloc(b)
        .map_tofrom(c)
        .reads(c)
        .reads(b)
        .reads(a)
        .writes(c)
        .done();
    p.host_read_sec(c, 0, 1);
    p.taskwait();
    p.build()
}

fn b023() -> Program {
    let mut p = pb(23);
    let a = p.buffer_init("a", 8, NE);
    // BUG: maps N+8 elements of an N-element array.
    p.target().map_to_sec(a, 0, NE + 8).reads(a).done();
    p.taskwait();
    p.build()
}

fn b024() -> Program {
    let mut p = pb(24);
    let x = p.buffer_init("x", 8, NE);
    let acc = p.buffer_init("acc", 8, NE);
    // BUG: `acc` is map(from) but read before being written on the device.
    p.target().map_to(x).map_from(acc).reads(acc).reads(x).writes(acc).done();
    p.host_read_sec(acc, 0, 1);
    p.taskwait();
    p.build()
}

fn b025() -> Program {
    let mut p = pb(25);
    let a = p.buffer_init("a", 8, NE);
    // BUG: section `a[4 : 4+N]` runs past the end of the array.
    p.target().map_to_sec(a, 4, NE).reads_sec(a, 4, NE - 4).done();
    p.taskwait();
    p.build()
}

fn b026() -> Program {
    let mut p = pb(26);
    let a = p.buffer_init("a", 8, NE);
    // BUG: map(to) only; the device's writes never come back.
    p.target().map_to(a).reads(a).writes(a).done();
    p.host_read_sec(a, NE / 2, 1);
    p.taskwait();
    p.build()
}

fn b027() -> Program {
    let mut p = pb(27);
    let a = p.buffer_init("a", 8, NE);
    // BUG: enclosing region maps `to` only; host reads stale data after.
    p.data().map_to(a).scope(|p| {
        p.target().map_to(a).reads(a).writes(a).done();
    });
    p.host_read_sec(a, 3, 1);
    p.taskwait();
    p.build()
}

fn b028() -> Program {
    let mut p = pb(28);
    let a = p.buffer("a", 8, NE);
    // BUG: map(from) section of N+8 elements; the exit copy-back overflows.
    p.target().map_from_sec(a, 0, NE + 8).writes(a).done();
    p.host_read_sec(a, 0, 1);
    p.taskwait();
    p.build()
}

fn b029() -> Program {
    let mut p = pb(29);
    let a = p.buffer_init("a", 8, NE);
    // BUG: section `a[N/2 : N/2+N]` runs past the end of the array.
    p.target()
        .map_tofrom_sec(a, NE / 2, NE)
        .reads_sec(a, NE / 2, NE / 2)
        .writes_sec(a, NE / 2, NE / 2)
        .done();
    p.taskwait();
    p.build()
}

fn b030() -> Program {
    let mut p = pb(30);
    let a = p.buffer_init("a", 8, NE);
    // BUG: enter-data maps N+8 elements; the entry copy-in overflows.
    p.enter_data(vec![to_sec(a, 0, NE + 8)]);
    p.target().map_to(a).reads(a).done();
    p.exit_data(vec![release(a)]);
    p.taskwait();
    p.build()
}

fn b031() -> Program {
    let mut p = pb(31);
    let a = p.buffer("a", 8, NE);
    // BUG: oversized alloc section; the exit-data copy-back overflows.
    p.enter_data(vec![alloc_sec(a, 0, NE + 8)]);
    p.target().map_alloc(a).writes(a).done();
    p.exit_data(vec![from(a)]);
    p.host_read_sec(a, 0, 1);
    p.taskwait();
    p.build()
}

fn b032() -> Program {
    let mut p = pb(32);
    let a = p.buffer_init("a", 8, NE);
    // BUG: host reads inside the region, before any copy-back.
    p.data().map_tofrom(a).scope(|p| {
        p.target().map_to(a).reads(a).writes(a).done();
        p.host_read_sec(a, 7, 1);
    });
    p.taskwait();
    p.build()
}

fn b033() -> Program {
    let mut p = pb(33);
    let a = p.buffer_init("a", 8, NE);
    let out = p.buffer("out", 8, NE);
    // BUG: host rewrites `a` inside the region; the inner map(to) is a
    // no-op (refcount already 1), so the kernel reads the stale copy.
    p.data().map_to(a).map_from(out).scope(|p| {
        p.host_write(a);
        p.target().map_to(a).map_from(out).reads(a).writes(out).done();
    });
    p.host_read_sec(out, 0, 1);
    p.taskwait();
    p.build()
}

fn b034() -> Program {
    let mut p = pb(34);
    let coeff = p.buffer("coeff", 8, NE); // BUG: never initialised.
    let out = p.buffer("out", 8, NE);
    p.data().map_alloc(coeff).map_from(out).scope(|p| {
        p.update_to(coeff);
        p.target()
            .map_alloc(coeff)
            .map_from(out)
            .reads(coeff)
            .writes(out)
            .done();
    });
    p.host_read_sec(out, 0, 1);
    p.taskwait();
    p.build()
}

fn b049() -> Program {
    let mut p = pb(49);
    let a = p.buffer_init("a", 8, NE);
    let out = p.buffer("out", 8, NE);
    // BUG: enter-data uses map(alloc); host contents of `a` never arrive.
    p.enter_data(vec![alloc(a)]);
    p.target().map_alloc(a).map_from(out).reads(a).writes(out).done();
    p.exit_data(vec![release(a)]);
    p.host_read_sec(out, 0, 1);
    p.taskwait();
    p.build()
}

fn b050() -> Program {
    let mut p = pb(50);
    // Whether `a` was initialised depends on program input (§VI-G): the
    // static model can only say "may be initialised", so the checker
    // reports a `may` diagnostic here — dynamic analysis decides it.
    let a = p.buffer_init_may("a", 8, NE);
    let out = p.buffer("out", 8, NE);
    p.target().map_to(a).map_from(out).reads(a).writes(out).done();
    p.host_read_sec(out, 0, 1);
    p.taskwait();
    p.build()
}

fn b051() -> Program {
    let mut p = pb(51);
    let a = p.buffer_init("a", 8, NE);
    p.enter_data(vec![to(a)]);
    p.target().map_to(a).reads(a).writes(a).done();
    p.exit_data(vec![release(a)]);
    // BUG: the remap uses map(alloc); the second kernel reads garbage.
    p.enter_data(vec![alloc(a)]);
    p.target().map_alloc(a).reads(a).done();
    p.exit_data(vec![release(a)]);
    p.taskwait();
    p.build()
}

/// The trip count the historic (hand-unrolled) model of a loop-shaped
/// benchmark used, for ids that have a loop-form symbolic model.
fn historic_trip(id: u32) -> Option<u64> {
    Some(match id {
        9 => 3,
        13 => 5,
        21 => 2,
        41 => 4,
        43 => 2,
        55 => 3,
        _ => return None,
    })
}

/// The loop-form symbolic model for a loop-shaped benchmark, paired
/// with the binding that reproduces the historic unrolled shape. The
/// static analyzer can check these once, for *every* trip count; the
/// concrete [`ir_model`] is their instantiation.
pub fn symbolic_model(id: u32) -> Option<(Program, Binding)> {
    let trips = historic_trip(id)?;
    let (p, iters) = match id {
        9 => s09(),
        13 => s13(),
        21 => s21(),
        41 => s41(),
        43 => s43(),
        55 => s55(),
        _ => unreachable!("historic_trip covers exactly the loop ids"),
    };
    Some((p, Binding::new().set(iters, trips)))
}

/// The IR model for one benchmark id, if one exists (all 56 do). The
/// loop-shaped benchmarks concretize their symbolic model at the
/// historic trip count; the rest are straight-line programs.
pub fn ir_model(id: u32) -> Option<Program> {
    if let Some((p, b)) = symbolic_model(id) {
        return Some(p.concretize(&b).expect("historic binding is in range"));
    }
    let f: fn() -> Program = match id {
        1 => c01,
        2 => c02,
        3 => c03,
        4 => c04,
        5 => c05,
        6 => c06,
        7 => c07,
        8 => c08,
        10 => c10,
        11 => c11,
        12 => c12,
        14 => c14,
        15 => c15,
        16 => c16,
        17 => c17,
        18 => c18,
        19 => c19,
        20 => c20,
        22 => b022,
        23 => b023,
        24 => b024,
        25 => b025,
        26 => b026,
        27 => b027,
        28 => b028,
        29 => b029,
        30 => b030,
        31 => b031,
        32 => b032,
        33 => b033,
        34 => b034,
        35 => c35,
        36 => c36,
        37 => c37,
        38 => c38,
        39 => c39,
        40 => c40,
        42 => c42,
        44 => c44,
        45 => c45,
        46 => c46,
        47 => c47,
        48 => c48,
        49 => b049,
        50 => b050,
        51 => b051,
        52 => c52,
        53 => c53,
        54 => c54,
        56 => c56,
        _ => return None,
    };
    Some(f())
}

/// IR models for all 56 benchmarks, ascending by id.
pub fn all_models() -> Vec<Program> {
    (1..=56).map(|id| ir_model(id).expect("model for every id")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_model_with_matching_name() {
        for b in crate::all() {
            let m = ir_model(b.id).expect("model");
            assert_eq!(m.name, b.dracc_id());
        }
    }

    #[test]
    fn models_declare_at_least_one_buffer_and_construct() {
        for m in all_models() {
            assert!(!m.buffers.is_empty(), "{}", m.name);
            assert!(!m.nodes.is_empty(), "{}", m.name);
        }
    }

    #[test]
    fn only_050_models_data_dependent_initialisation() {
        use arbalest_ir::Certainty;
        for m in all_models() {
            let has_may_init = m
                .buffers
                .iter()
                .any(|d| matches!(d.host_init, Some((Certainty::May, _))));
            assert_eq!(has_may_init, m.name == "DRACC_OMP_050", "{}", m.name);
        }
    }
}
