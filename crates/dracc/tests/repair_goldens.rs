//! Golden-file tests for repair synthesis over the must-buggy suite.
//!
//! Every DRACC model the static analyzer convicts at `Must` severity
//! must get a synthesized repair passing both oracles (static: zero
//! `Must`, no new `May`; dynamic: zero reports on the real runtime),
//! and the rendered unified IR diff must match its golden byte for
//! byte — the pretty-printer is part of the user-facing contract.
//!
//! Regenerate with `ARBALEST_REGEN_GOLDENS=1 cargo test -p
//! arbalest-dracc --test repair_goldens` after an intentional change,
//! then review the diffs like any other source edit.

use arbalest_dracc::ir_models;
use arbalest_ir::Binding;
use arbalest_static::repair::{minimize_transfers, synthesize_fix};

/// The 15 benchmarks whose seeded bug draws a `Must` static verdict
/// (DRACC 50 stays `May`-only per §VI-G and is deliberately absent).
const MUST_BUGGY: [u32; 15] = [22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 49, 51];

fn golden_path(id: u32) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/repair")
        .join(format!("DRACC_OMP_{id:03}.diff"))
}

#[test]
fn every_must_buggy_model_has_a_verified_byte_stable_repair() {
    let regen = std::env::var_os("ARBALEST_REGEN_GOLDENS").is_some();
    let mut failures = Vec::new();
    for id in MUST_BUGGY {
        let program = ir_models::ir_model(id).expect("model exists");
        let out = synthesize_fix(&program.name, &program, &Binding::new());
        assert!(out.baseline_must > 0, "{}: expected a Must conviction", program.name);
        assert!(
            out.repaired(),
            "{}: no candidate of {} cleared both oracles",
            program.name,
            out.candidates_tried
        );
        let patch = out.patch.as_ref().unwrap();
        // Every seeded bug repairs with one edit except 51, whose value
        // must thread across two target phases (copy back, then copy in).
        let want_edits = if id == 51 { 2 } else { 1 };
        assert_eq!(patch.edits.len(), want_edits, "{}: unexpected patch size", program.name);
        assert!(!out.diff.is_empty(), "{}: empty diff", program.name);
        let path = golden_path(id);
        if regen {
            std::fs::write(&path, &out.diff).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing golden {}: {e}", program.name, path.display()));
        if out.diff != want {
            failures.push(format!(
                "{}: rendered diff drifted from golden\n--- golden\n{want}\n--- rendered\n{}",
                program.name, out.diff
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn correct_models_have_nothing_to_fix() {
    for id in [1, 2, 8, 21, 56] {
        let program = ir_models::ir_model(id).expect("model exists");
        let out = synthesize_fix(&program.name, &program, &Binding::new());
        assert!(out.clean(), "{}: unexpectedly convicted", program.name);
        assert!(out.patch.is_none());
    }
}

#[test]
fn the_data_dependent_case_is_left_to_the_dynamic_tool() {
    // DRACC 50 (§VI-G): statically `May`-only, so `fix` must not invent
    // a repair for a bug that may not exist.
    let program = ir_models::ir_model(50).expect("model exists");
    let out = synthesize_fix(&program.name, &program, &Binding::new());
    assert_eq!(out.baseline_must, 0);
    assert!(out.baseline_may > 0);
    assert!(out.clean() && out.patch.is_none());
}

#[test]
fn optimize_reduces_transfers_on_a_correct_model_with_parity() {
    // DRACC 8 copies its buffer back at region exit although an inner
    // `update from` already delivered the value the host reads.
    let program = ir_models::ir_model(8).expect("model exists");
    let out = minimize_transfers(&program.name, &program, &Binding::new());
    assert!(out.saved() > 0, "{}: no savings found", program.name);
    assert!(!out.patch.edits.is_empty());
}
