//! The Table III experiment as a test: run all 56 benchmarks under all
//! five tools and assert the detection matrix the paper reports.
//!
//! | Benchmarks             | Effect | Arbalest | Valgrind | Archer | ASan | MSan |
//! |------------------------|--------|----------|----------|--------|------|------|
//! | 22, 24, 49, 50, 51     | UUM    | ✓        | -        | -      | -    | ✓    |
//! | 23, 25, 28, 29, 30, 31 | BO     | ✓        | ✓        | -      | ✓    | -    |
//! | 26, 27, 32, 33, 34     | USD    | ✓        | -        | -      | -    | -    |
//! | 40 correct benchmarks  | —      | no false positives from any tool |

use arbalest_baselines::{AddressSanitizer, Archer, Memcheck, MemorySanitizer};
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

fn tool_instances() -> Vec<(&'static str, Arc<dyn Tool>)> {
    vec![
        ("arbalest", Arc::new(Arbalest::new(ArbalestConfig::default()))),
        ("memcheck", Arc::new(Memcheck::new())),
        ("archer", Arc::new(Archer::new())),
        ("asan", Arc::new(AddressSanitizer::new())),
        ("msan", Arc::new(MemorySanitizer::new())),
    ]
}

/// Run one benchmark under one tool; return whether the tool credited the
/// benchmark's seeded effect (or reported anything, for correct ones).
fn detections(bench: &arbalest_dracc::Benchmark, tool_name: &'static str) -> Vec<Report> {
    let tool = tool_instances()
        .into_iter()
        .find(|(n, _)| *n == tool_name)
        .expect("known tool")
        .1;
    let rt = Runtime::with_tool(Config::default(), tool);
    bench.run(&rt);
    rt.reports()
}

fn detects(bench: &arbalest_dracc::Benchmark, tool: &'static str) -> bool {
    let effect = bench.expected.expect("buggy benchmark");
    detections(bench, tool).iter().any(|r| r.kind.credits_effect(effect))
}

#[test]
fn uum_row_arbalest_and_msan_only() {
    for id in [22u32, 24, 49, 50, 51] {
        let b = arbalest_dracc::by_id(id).unwrap();
        assert!(detects(&b, "arbalest"), "arbalest must catch {}", b.dracc_id());
        assert!(detects(&b, "msan"), "msan must catch {}", b.dracc_id());
        assert!(!detects(&b, "memcheck"), "memcheck must miss {}", b.dracc_id());
        assert!(!detects(&b, "archer"), "archer must miss {}", b.dracc_id());
        assert!(!detects(&b, "asan"), "asan must miss {}", b.dracc_id());
    }
}

#[test]
fn bo_row_arbalest_valgrind_asan() {
    for id in [23u32, 25, 28, 29, 30, 31] {
        let b = arbalest_dracc::by_id(id).unwrap();
        assert!(detects(&b, "arbalest"), "arbalest must catch {}", b.dracc_id());
        assert!(detects(&b, "memcheck"), "memcheck must catch {}", b.dracc_id());
        assert!(detects(&b, "asan"), "asan must catch {}", b.dracc_id());
        assert!(!detects(&b, "archer"), "archer must miss {}", b.dracc_id());
        assert!(!detects(&b, "msan"), "msan must miss {}", b.dracc_id());
    }
}

#[test]
fn usd_row_arbalest_only() {
    for id in [26u32, 27, 32, 33, 34] {
        let b = arbalest_dracc::by_id(id).unwrap();
        assert!(detects(&b, "arbalest"), "arbalest must catch {}", b.dracc_id());
        for tool in ["memcheck", "archer", "asan", "msan"] {
            assert!(!detects(&b, tool), "{tool} must miss {}", b.dracc_id());
        }
    }
}

#[test]
fn overall_score_matches_paper() {
    let buggy = arbalest_dracc::buggy();
    let score = |tool: &'static str| buggy.iter().filter(|b| detects(b, tool)).count();
    assert_eq!(score("arbalest"), 16, "Arbalest 16/16");
    assert_eq!(score("memcheck"), 6, "Valgrind 6/16");
    assert_eq!(score("archer"), 0, "Archer 0/16");
    assert_eq!(score("asan"), 6, "ASan 6/16");
    assert_eq!(score("msan"), 5, "MSan 5/16");
}

#[test]
fn no_false_positives_on_correct_benchmarks() {
    for b in arbalest_dracc::correct() {
        for tool in ["arbalest", "memcheck", "archer", "asan", "msan"] {
            let reports = detections(&b, tool);
            assert!(
                reports.is_empty(),
                "{tool} false positive on {}: {:?}",
                b.dracc_id(),
                reports.iter().map(|r| (r.kind, r.message.clone())).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn arbalest_classifies_effects_correctly() {
    // Beyond detection: ARBALEST's report kind must name the observable
    // anomaly (UUM vs USD vs BO), per §V-B.
    for b in arbalest_dracc::buggy() {
        let reports = detections(&b, "arbalest");
        let effect = b.expected.unwrap();
        let want = match effect {
            Effect::Uum => ReportKind::MappingUum,
            Effect::Usd => ReportKind::MappingUsd,
            Effect::Bo => ReportKind::MappingOverflow,
            Effect::Race => ReportKind::DataRace,
        };
        assert!(
            reports.iter().any(|r| r.kind == want),
            "{} expected {:?}, got {:?}",
            b.dracc_id(),
            want,
            reports.iter().map(|r| r.kind).collect::<Vec<_>>()
        );
    }
}

#[test]
fn arbalest_reports_carry_actionable_context() {
    let b = arbalest_dracc::by_id(22).unwrap();
    let reports = detections(&b, "arbalest");
    let r = reports.iter().find(|r| r.kind == ReportKind::MappingUum).unwrap();
    assert_eq!(r.buffer.as_deref(), Some("b"));
    assert!(r.loc.is_some(), "source location captured");
    assert!(r.suggested_fix.is_some(), "repair hint present (§III-C)");
    let rendered = r.render();
    assert!(rendered.contains("mapping-issue(UUM)"));
}
