//! Report parity across the observability features added for causal
//! tracing and `arbalest explain`: with provenance capture disabled (the
//! default), every one of the 56 DRACC cases must produce reports that
//! are byte-identical to what the detector produced before the feature
//! existed — same renders, same order, and no provenance payload at all.
//!
//! Because the detector is deterministic under the analysis schedule,
//! the strongest checkable form of "identical to the previous PR" is:
//! default runs are self-identical (replay-stable), and a provenance-on
//! run changes *nothing* about the rendered output — the chain rides
//! alongside the report, never inside it.

use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_offload::prelude::*;
use std::sync::Arc;

fn sweep(cfg: ArbalestConfig) -> Vec<Vec<Report>> {
    arbalest_dracc::all()
        .iter()
        .map(|b| {
            let rt = Runtime::with_tool(Config::default(), Arc::new(Arbalest::new(cfg.clone())));
            b.run(&rt);
            rt.reports()
        })
        .collect()
}

#[test]
fn default_config_reports_are_replay_stable_and_provenance_free() {
    let first = sweep(ArbalestConfig::default());
    let second = sweep(ArbalestConfig::default());
    assert_eq!(first, second, "default DRACC sweep must be deterministic");
    for (bench, reports) in arbalest_dracc::all().iter().zip(&first) {
        for r in reports {
            assert!(
                r.provenance.is_empty(),
                "{}: provenance captured with the feature off",
                bench.dracc_id()
            );
        }
    }
}

#[test]
fn provenance_capture_never_changes_rendered_output() {
    let off = sweep(ArbalestConfig::default());
    let on = sweep(ArbalestConfig { provenance: true, ..ArbalestConfig::default() });
    for ((bench, off_reports), on_reports) in arbalest_dracc::all().iter().zip(&off).zip(&on) {
        let off_text: String = off_reports.iter().map(|r| r.render()).collect();
        let on_text: String = on_reports.iter().map(|r| r.render()).collect();
        assert_eq!(
            off_text,
            on_text,
            "{}: provenance capture altered the rendered report",
            bench.dracc_id()
        );
        // Chains attach to the VSM-diagnosed classes (UUM/USD) — those
        // cases must actually carry one when capture is on, otherwise
        // `arbalest explain` has nothing to say.
        if matches!(bench.expected, Some(Effect::Uum | Effect::Usd)) {
            assert!(
                on_reports.iter().any(|r| !r.provenance.is_empty()),
                "{}: no provenance chain captured for a UUM/USD case",
                bench.dracc_id()
            );
        }
    }
}
