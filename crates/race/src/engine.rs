//! The FastTrack engine.
//!
//! Read/write checks follow Flanagan & Freund's FastTrack rules: each
//! location keeps the last-write epoch and either a last-read epoch or —
//! after concurrent reads — a read vector clock. Most checks and updates
//! are O(1) epoch comparisons; only concurrent-read promotion pays O(T).
//!
//! Tasks map to 12-bit thread slots (Table II's TID field). Slots are
//! assigned monotonically; if more than 4096 tasks ever exist, slots wrap
//! with a per-slot monotone clock floor — the same pragmatic compromise
//! production TSan makes, trading a bounded risk of false negatives in
//! extremely long runs for bounded shadow state.

use crate::clock::{Epoch, VectorClock, MAX_TIDS};
use arbalest_sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte range of an access within its granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByteRange {
    offset: u8,
    size: u8,
}

impl ByteRange {
    #[inline]
    fn overlaps(self, other: ByteRange) -> bool {
        let a0 = self.offset;
        let a1 = self.offset + self.size;
        let b0 = other.offset;
        let b1 = other.offset + other.size;
        a0 < b1 && b0 < a1
    }
}

/// Details of the prior access involved in a detected race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceInfo {
    /// Thread slot of the prior access.
    pub prev_tid: u16,
    /// Scalar clock of the prior access.
    pub prev_clock: u64,
    /// Whether the prior access was a write.
    pub prev_was_write: bool,
}

#[derive(Debug, Clone)]
enum ReadState {
    Epoch(Epoch, ByteRange),
    Shared(VectorClock),
}

#[derive(Debug, Clone)]
struct LocState {
    write: Epoch,
    write_range: ByteRange,
    read: ReadState,
}

impl LocState {
    fn new() -> Self {
        LocState {
            write: Epoch::ZERO,
            write_range: ByteRange { offset: 0, size: 8 },
            read: ReadState::Epoch(Epoch::ZERO, ByteRange { offset: 0, size: 8 }),
        }
    }
}

struct TaskState {
    tid: u16,
    vc: VectorClock,
    ended: bool,
}

const SHARDS: usize = 64;

/// One task's clock state in a [`RaceSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSnapshot {
    /// Task id.
    pub task: u32,
    /// Assigned 12-bit thread slot.
    pub tid: u16,
    /// Raw vector-clock slots ([`VectorClock::slot_values`]).
    pub clock: Vec<u64>,
    /// Whether the task has ended.
    pub ended: bool,
}

/// Read side of one location in a [`RaceSnapshot`] (FastTrack's
/// epoch-or-shared-clock alternative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadSnapshot {
    /// Single last-read epoch with its byte range.
    Epoch {
        /// Reader's thread slot.
        tid: u16,
        /// Reader's scalar clock.
        clock: u64,
        /// Byte offset of the read within its granule.
        offset: u8,
        /// Byte size of the read.
        size: u8,
    },
    /// Promoted concurrent-read vector clock (raw slots).
    Shared(Vec<u64>),
}

/// One location's FastTrack state in a [`RaceSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocSnapshot {
    /// Last-write thread slot.
    pub write_tid: u16,
    /// Last-write scalar clock.
    pub write_clock: u64,
    /// Byte offset of the last write within its granule.
    pub write_offset: u8,
    /// Byte size of the last write.
    pub write_size: u8,
    /// Read state.
    pub read: ReadSnapshot,
}

/// Complete serializable state of a [`RaceEngine`], produced by
/// [`RaceEngine::to_snapshot`] with every map sorted by key so equal
/// engine states yield equal (hence byte-identical, once encoded)
/// snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSnapshot {
    /// Task clocks, sorted by task id.
    pub tasks: Vec<TaskSnapshot>,
    /// Per-slot monotone clock floors (slot wrap-around support).
    pub slot_floor: Vec<u64>,
    /// Next raw slot number to allocate.
    pub next_slot: u64,
    /// Per-granule location states, sorted by granule address.
    pub locs: Vec<(u64, LocSnapshot)>,
    /// Lock release clocks, sorted by lock id.
    pub locks: Vec<(u64, Vec<u64>)>,
}

/// A happens-before race detection engine.
pub struct RaceEngine {
    tasks: Mutex<HashMap<u32, TaskState>>,
    /// Per-slot monotone clock floors for slot wrap-around.
    slot_floor: Mutex<Vec<u64>>,
    next_slot: AtomicU64,
    shards: Vec<Mutex<HashMap<u64, LocState>>>,
    /// Release clocks of lock objects (`omp critical` support).
    locks: Mutex<HashMap<u64, VectorClock>>,
}

impl Default for RaceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl RaceEngine {
    /// Create an engine with task 0 (the host) already registered.
    pub fn new() -> Self {
        let engine = RaceEngine {
            tasks: Mutex::new(HashMap::new()),
            slot_floor: Mutex::new(vec![0; MAX_TIDS]),
            next_slot: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            locks: Mutex::new(HashMap::new()),
        };
        engine.register_root(0);
        engine
    }

    fn register_root(&self, task: u32) {
        let tid = self.alloc_slot();
        let mut vc = VectorClock::new();
        vc.tick(tid);
        self.tasks.lock().insert(task, TaskState { tid, vc, ended: false });
    }

    fn alloc_slot(&self) -> u16 {
        let raw = self.next_slot.fetch_add(1, Ordering::Relaxed);
        (raw % MAX_TIDS as u64) as u16
    }

    /// The (tid, clock) epoch a task would stamp on its next access —
    /// what ARBALEST stores in the shadow word's TID/clock fields.
    pub fn epoch_of(&self, task: u32) -> Epoch {
        let tasks = self.tasks.lock();
        tasks.get(&task).map(|t| t.vc.epoch(t.tid)).unwrap_or(Epoch::ZERO)
    }

    /// Fork: `child` begins, ordered after everything `parent` did so far.
    pub fn fork(&self, parent: u32, child: u32) {
        let tid = self.alloc_slot();
        let mut tasks = self.tasks.lock();
        let parent_vc = tasks.get(&parent).map(|t| t.vc.clone()).unwrap_or_default();
        let mut vc = parent_vc;
        let floor = {
            let floors = self.slot_floor.lock();
            floors[tid as usize]
        };
        let start = vc.get(tid).max(floor) + 1;
        vc.set(tid, start);
        tasks.insert(child, TaskState { tid, vc, ended: false });
        // Parent ticks so its post-fork work is not ordered before the
        // child's view of it.
        if let Some(p) = tasks.get_mut(&parent) {
            let ptid = p.tid;
            p.vc.tick(ptid);
        }
    }

    /// Task end: freeze the task's final clock.
    pub fn end(&self, task: u32) {
        let mut tasks = self.tasks.lock();
        if let Some(t) = tasks.get_mut(&task) {
            t.ended = true;
            let (tid, clk) = (t.tid, t.vc.get(t.tid));
            drop(tasks);
            let mut floors = self.slot_floor.lock();
            let f = &mut floors[tid as usize];
            *f = (*f).max(clk);
        }
    }

    /// Lock acquire: the task continues ordered after the lock's last
    /// release (FastTrack's `acquire` rule).
    pub fn acquire(&self, task: u32, lock: u64) {
        let lock_vc = self.locks.lock().get(&lock).cloned();
        if let Some(vc) = lock_vc {
            let mut tasks = self.tasks.lock();
            if let Some(t) = tasks.get_mut(&task) {
                t.vc.join(&vc);
            }
        }
    }

    /// Lock release: publish the task's clock into the lock and tick.
    pub fn release(&self, task: u32, lock: u64) {
        let mut tasks = self.tasks.lock();
        if let Some(t) = tasks.get_mut(&task) {
            let snapshot = t.vc.clone();
            let tid = t.tid;
            t.vc.tick(tid);
            drop(tasks);
            self.locks.lock().insert(lock, snapshot);
        }
    }

    /// Join: `waiter` continues, ordered after all of `joined`.
    pub fn join(&self, waiter: u32, joined: u32) {
        let mut tasks = self.tasks.lock();
        let joined_vc = match tasks.get(&joined) {
            Some(t) => t.vc.clone(),
            None => return,
        };
        if let Some(w) = tasks.get_mut(&waiter) {
            w.vc.join(&joined_vc);
            let wtid = w.tid;
            w.vc.tick(wtid);
        }
    }

    #[inline]
    fn shard(&self, granule: u64) -> &Mutex<HashMap<u64, LocState>> {
        // Mix the granule index so consecutive granules spread over shards.
        let g = granule >> 3;
        let h = g.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 58) as usize % SHARDS]
    }

    fn task_view(&self, task: u32) -> (u16, VectorClock) {
        let tasks = self.tasks.lock();
        match tasks.get(&task) {
            Some(t) => (t.tid, t.vc.clone()),
            None => (0, VectorClock::new()),
        }
    }

    /// FastTrack read check at `addr` (byte address; `size` ∈ 1..=8).
    /// Returns the racing prior write, if any.
    pub fn check_read(&self, task: u32, addr: u64, size: u8) -> Option<RaceInfo> {
        let (tid, vc) = self.task_view(task);
        let range = ByteRange { offset: (addr & 7) as u8, size };
        let granule = addr & !7;
        let mut shard = self.shard(granule).lock();
        let loc = shard.entry(granule).or_insert_with(LocState::new);
        let mut race = None;
        if !loc.write.is_zero() && !loc.write.leq(&vc) && range.overlaps(loc.write_range) {
            race = Some(RaceInfo {
                prev_tid: loc.write.tid,
                prev_clock: loc.write.clock,
                prev_was_write: true,
            });
        }
        // Update read state per FastTrack.
        let me = vc.epoch(tid);
        match &mut loc.read {
            ReadState::Epoch(e, r) => {
                if e.is_zero() || e.leq(&vc) {
                    *e = me;
                    *r = range;
                } else {
                    // Concurrent reads: promote to a read vector clock.
                    let mut rvc = VectorClock::new();
                    rvc.set(e.tid, e.clock);
                    rvc.set(me.tid, me.clock);
                    loc.read = ReadState::Shared(rvc);
                }
            }
            ReadState::Shared(rvc) => {
                rvc.set(me.tid, me.clock.max(rvc.get(me.tid)));
            }
        }
        race
    }

    /// FastTrack write check.
    pub fn check_write(&self, task: u32, addr: u64, size: u8) -> Option<RaceInfo> {
        let (tid, vc) = self.task_view(task);
        let range = ByteRange { offset: (addr & 7) as u8, size };
        let granule = addr & !7;
        let mut shard = self.shard(granule).lock();
        let loc = shard.entry(granule).or_insert_with(LocState::new);
        let mut race = None;
        if !loc.write.is_zero() && !loc.write.leq(&vc) && range.overlaps(loc.write_range) {
            race = Some(RaceInfo {
                prev_tid: loc.write.tid,
                prev_clock: loc.write.clock,
                prev_was_write: true,
            });
        }
        if race.is_none() {
            match &loc.read {
                ReadState::Epoch(e, r) => {
                    if !e.is_zero() && !e.leq(&vc) && range.overlaps(*r) {
                        race = Some(RaceInfo {
                            prev_tid: e.tid,
                            prev_clock: e.clock,
                            prev_was_write: false,
                        });
                    }
                }
                ReadState::Shared(rvc) => {
                    if !rvc.leq(&vc) {
                        // Find one offending reader for the report.
                        let mut offender = Epoch::ZERO;
                        for t in 0..MAX_TIDS as u16 {
                            let c = rvc.get(t);
                            if c > vc.get(t) {
                                offender = Epoch { tid: t, clock: c };
                                break;
                            }
                        }
                        race = Some(RaceInfo {
                            prev_tid: offender.tid,
                            prev_clock: offender.clock,
                            prev_was_write: false,
                        });
                    }
                }
            }
        }
        loc.write = vc.epoch(tid);
        loc.write_range = range;
        loc.read = ReadState::Epoch(Epoch::ZERO, range);
        race
    }

    /// Range write check: used for transfers, which behave like writes of
    /// the destination range and reads of the source range by the
    /// transferring task. Returns the first race found.
    pub fn check_write_range(&self, task: u32, addr: u64, len: u64) -> Option<RaceInfo> {
        let mut g = addr & !7;
        let end = addr + len;
        let mut first = None;
        while g < end {
            if let Some(r) = self.check_write(task, g, 8) {
                first.get_or_insert(r);
            }
            g += 8;
        }
        first
    }

    /// Range read check (see [`Self::check_write_range`]).
    pub fn check_read_range(&self, task: u32, addr: u64, len: u64) -> Option<RaceInfo> {
        let mut g = addr & !7;
        let end = addr + len;
        let mut first = None;
        while g < end {
            if let Some(r) = self.check_read(task, g, 8) {
                first.get_or_insert(r);
            }
            g += 8;
        }
        first
    }

    /// Drop the recorded per-location access history — the bulk of the
    /// engine's footprint — keeping task clocks and lock release clocks.
    ///
    /// Losing prior-access records can only *miss* races (a race needs a
    /// recorded unordered prior access), never invent one, so eviction is
    /// safe in the no-false-positive direction. Task and lock clocks are
    /// small and retaining them keeps every happens-before edge intact
    /// for accesses made after the eviction.
    pub fn evict_history(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Dump the complete engine state as plain data for durable session
    /// snapshots. Every map is emitted sorted by key so two dumps of
    /// identical state are identical, independent of hash iteration order.
    pub fn to_snapshot(&self) -> RaceSnapshot {
        let tasks = self.tasks.lock();
        let mut task_dump: Vec<TaskSnapshot> = tasks
            .iter()
            .map(|(&task, t)| TaskSnapshot {
                task,
                tid: t.tid,
                clock: t.vc.slot_values().to_vec(),
                ended: t.ended,
            })
            .collect();
        drop(tasks);
        task_dump.sort_unstable_by_key(|t| t.task);
        let mut locs: Vec<(u64, LocSnapshot)> = Vec::new();
        for s in &self.shards {
            for (&granule, loc) in s.lock().iter() {
                locs.push((
                    granule,
                    LocSnapshot {
                        write_tid: loc.write.tid,
                        write_clock: loc.write.clock,
                        write_offset: loc.write_range.offset,
                        write_size: loc.write_range.size,
                        read: match &loc.read {
                            ReadState::Epoch(e, r) => ReadSnapshot::Epoch {
                                tid: e.tid,
                                clock: e.clock,
                                offset: r.offset,
                                size: r.size,
                            },
                            ReadState::Shared(vc) => {
                                ReadSnapshot::Shared(vc.slot_values().to_vec())
                            }
                        },
                    },
                ));
            }
        }
        locs.sort_unstable_by_key(|&(g, _)| g);
        let mut locks: Vec<(u64, Vec<u64>)> = self
            .locks
            .lock()
            .iter()
            .map(|(&l, vc)| (l, vc.slot_values().to_vec()))
            .collect();
        locks.sort_unstable_by_key(|&(l, _)| l);
        RaceSnapshot {
            tasks: task_dump,
            slot_floor: self.slot_floor.lock().clone(),
            next_slot: self.next_slot.load(Ordering::Relaxed),
            locs,
            locks,
        }
    }

    /// Rebuild an engine from a [`RaceSnapshot`]. The root task is NOT
    /// re-registered — the snapshot already carries it — so slot
    /// assignment resumes exactly where the dumped engine left off.
    pub fn from_snapshot(snap: &RaceSnapshot) -> RaceEngine {
        let mut floors = snap.slot_floor.clone();
        floors.resize(MAX_TIDS, 0);
        let engine = RaceEngine {
            tasks: Mutex::new(HashMap::new()),
            slot_floor: Mutex::new(floors),
            next_slot: AtomicU64::new(snap.next_slot),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            locks: Mutex::new(HashMap::new()),
        };
        {
            let mut tasks = engine.tasks.lock();
            for t in &snap.tasks {
                tasks.insert(
                    t.task,
                    TaskState {
                        tid: t.tid,
                        vc: VectorClock::from_slots(t.clock.clone()),
                        ended: t.ended,
                    },
                );
            }
        }
        for (granule, loc) in &snap.locs {
            engine.shard(*granule).lock().insert(
                *granule,
                LocState {
                    write: Epoch { tid: loc.write_tid, clock: loc.write_clock },
                    write_range: ByteRange { offset: loc.write_offset, size: loc.write_size },
                    read: match &loc.read {
                        ReadSnapshot::Epoch { tid, clock, offset, size } => ReadState::Epoch(
                            Epoch { tid: *tid, clock: *clock },
                            ByteRange { offset: *offset, size: *size },
                        ),
                        ReadSnapshot::Shared(slots) => {
                            ReadState::Shared(VectorClock::from_slots(slots.clone()))
                        }
                    },
                },
            );
        }
        {
            let mut locks = engine.locks.lock();
            for (l, slots) in &snap.locks {
                locks.insert(*l, VectorClock::from_slots(slots.clone()));
            }
        }
        engine
    }

    /// Approximate bytes held by clocks and location states (Fig. 9).
    pub fn approx_bytes(&self) -> u64 {
        let tasks = self.tasks.lock();
        let task_bytes: u64 = tasks.values().map(|t| t.vc.approx_bytes() + 32).sum();
        let loc_bytes: u64 = self
            .shards
            .iter()
            .map(|s| (s.lock().len() * (std::mem::size_of::<LocState>() + 16)) as u64)
            .sum();
        let lock_bytes: u64 =
            self.locks.lock().values().map(|v| v.approx_bytes() + 16).sum();
        task_bytes + loc_bytes + lock_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Task ids for readability.
    const HOST: u32 = 0;

    #[test]
    fn ordered_accesses_do_not_race() {
        let e = RaceEngine::new();
        assert!(e.check_write(HOST, 0x100, 8).is_none());
        e.fork(HOST, 1);
        // Child write after parent write: ordered by fork.
        assert!(e.check_write(1, 0x100, 8).is_none());
        e.end(1);
        e.join(HOST, 1);
        // Parent read after join: ordered.
        assert!(e.check_read(HOST, 0x100, 8).is_none());
    }

    #[test]
    fn concurrent_write_write_races() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        assert!(e.check_write(1, 0x200, 8).is_none());
        let race = e.check_write(2, 0x200, 8).expect("siblings race");
        assert!(race.prev_was_write);
    }

    #[test]
    fn concurrent_read_write_races_but_read_read_does_not() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        assert!(e.check_read(1, 0x300, 8).is_none());
        assert!(e.check_read(2, 0x300, 8).is_none(), "read-read is fine");
        let race = e.check_write(2, 0x300, 8);
        // Reader 1 is concurrent with writer 2.
        assert!(race.is_some());
        assert!(!race.unwrap().prev_was_write);
    }

    #[test]
    fn racing_write_then_read_detected() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        assert!(e.check_write(1, 0x400, 8).is_none());
        // Host never joined task 1 → host read races child write.
        let race = e.check_read(HOST, 0x400, 8).expect("unordered read");
        assert!(race.prev_was_write);
    }

    #[test]
    fn join_orders_subsequent_accesses() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.check_write(1, 0x500, 8);
        e.end(1);
        e.join(HOST, 1);
        assert!(e.check_write(HOST, 0x500, 8).is_none());
    }

    #[test]
    fn disjoint_bytes_in_one_granule_do_not_race() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        assert!(e.check_write(1, 0x600, 4).is_none());
        assert!(e.check_write(2, 0x604, 4).is_none(), "different halves of the word");
        // Same half does race (fresh granule so the last-write range is 1's).
        assert!(e.check_write(1, 0x610, 4).is_none());
        assert!(e.check_write(2, 0x610, 4).is_some());
    }

    #[test]
    fn transitive_ordering_via_intermediate_join() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.check_write(1, 0x700, 8);
        e.end(1);
        // Task 2 joins 1, then writes: ordered after 1.
        e.fork(HOST, 2);
        e.join(2, 1);
        assert!(e.check_write(2, 0x700, 8).is_none());
    }

    #[test]
    fn shared_read_promotion_then_ordered_write() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        e.check_read(1, 0x800, 8);
        e.check_read(2, 0x800, 8);
        e.end(1);
        e.end(2);
        e.join(HOST, 1);
        e.join(HOST, 2);
        // After joining both readers the host write is ordered.
        assert!(e.check_write(HOST, 0x800, 8).is_none());
    }

    #[test]
    fn range_checks_cover_every_granule() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        assert!(e.check_write(1, 0x918, 8).is_none());
        // Host range-write over [0x900, 0x940) hits granule 0x918.
        let race = e.check_write_range(HOST, 0x900, 0x40);
        assert!(race.is_some());
    }

    #[test]
    fn critical_sections_order_siblings() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        // Task 1 writes inside the critical section, then releases.
        e.acquire(1, 99);
        assert!(e.check_write(1, 0xA00, 8).is_none());
        e.release(1, 99);
        // Task 2 acquires the same lock: ordered after task 1's write.
        e.acquire(2, 99);
        assert!(e.check_write(2, 0xA00, 8).is_none(), "lock ordering suppresses the race");
        e.release(2, 99);
    }

    #[test]
    fn different_locks_do_not_order() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        e.acquire(1, 1);
        e.check_write(1, 0xB00, 8);
        e.release(1, 1);
        e.acquire(2, 2); // a different lock
        let race = e.check_write(2, 0xB00, 8);
        assert!(race.is_some(), "disjoint locks provide no ordering");
    }

    #[test]
    fn snapshot_restores_identical_behaviour_and_state() {
        let e = RaceEngine::new();
        e.fork(HOST, 1);
        e.fork(HOST, 2);
        e.check_read(1, 0x800, 8);
        e.check_read(2, 0x800, 8); // promotes to a shared read clock
        e.check_write(1, 0x900, 4);
        e.acquire(1, 99);
        e.release(1, 99);
        e.end(2);
        let snap = e.to_snapshot();
        let r = RaceEngine::from_snapshot(&snap);
        // State round trip is exact: re-snapshotting yields equal data.
        assert_eq!(r.to_snapshot(), snap);
        // Behaviour matches the live engine on the next events.
        assert_eq!(e.epoch_of(HOST), r.epoch_of(HOST));
        assert_eq!(e.epoch_of(1), r.epoch_of(1));
        let live = e.check_write(HOST, 0x800, 8);
        let rec = r.check_write(HOST, 0x800, 8);
        assert_eq!(live, rec, "shared-read race must survive the snapshot");
        assert!(live.is_some());
        // Slot allocation resumes identically (no double-registered root).
        e.fork(HOST, 3);
        r.fork(HOST, 3);
        assert_eq!(e.epoch_of(3), r.epoch_of(3));
    }

    #[test]
    fn epoch_of_reflects_progress() {
        let e = RaceEngine::new();
        let e0 = e.epoch_of(HOST);
        e.fork(HOST, 1);
        let e1 = e.epoch_of(HOST);
        assert!(e1.clock > e0.clock, "fork ticks the parent");
        assert_eq!(e0.tid, e1.tid);
        let c = e.epoch_of(1);
        assert_ne!(c.tid, e0.tid);
    }
}
