//! # arbalest-race
//!
//! A FastTrack-style happens-before data race detection engine — the
//! substrate both the Archer baseline model and ARBALEST itself use
//! (ARBALEST "is built upon Archer", §V, and reports data races alongside
//! mapping issues).
//!
//! The engine consumes the runtime's task structure events (fork / end /
//! join) and per-access checks at 8-byte granule granularity, refined by
//! byte offset/length so two threads touching different halves of a word
//! do not collide, mirroring TSan's shadow cells.

#![warn(missing_docs)]

pub mod clock;
pub mod engine;

pub use clock::{Epoch, VectorClock};
pub use engine::{LocSnapshot, RaceEngine, RaceInfo, RaceSnapshot, ReadSnapshot, TaskSnapshot};

/// # Example
///
/// ```
/// use arbalest_race::RaceEngine;
///
/// let e = RaceEngine::new();
/// e.fork(0, 1);                       // host forks a task
/// assert!(e.check_write(1, 0x100, 8).is_none());
/// // The host never joined task 1: its read races the task's write.
/// let race = e.check_read(0, 0x100, 8).expect("race");
/// assert!(race.prev_was_write);
/// ```
#[doc(hidden)]
pub struct _DoctestAnchor;
