//! Vector clocks and epochs (FastTrack's `tid@clock` pairs).

/// Maximum number of thread slots — 12 bits, matching the shadow word's
/// TID field (Table II).
pub const MAX_TIDS: usize = 1 << 12;

/// A FastTrack epoch: one thread's scalar clock at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Thread slot.
    pub tid: u16,
    /// Scalar clock value.
    pub clock: u64,
}

impl Epoch {
    /// The "never accessed" epoch.
    pub const ZERO: Epoch = Epoch { tid: 0, clock: 0 };

    /// `self ⪯ vc` — the epoch happens-before (or equals) the clock.
    #[inline]
    pub fn leq(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.tid)
    }

    /// True when this is the zero epoch.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.clock == 0
    }
}

/// A growable vector clock indexed by thread slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The empty (all-zero) clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Component for `tid` (0 when never set).
    #[inline]
    pub fn get(&self, tid: u16) -> u64 {
        self.slots.get(tid as usize).copied().unwrap_or(0)
    }

    /// Set a component.
    pub fn set(&mut self, tid: u16, value: u64) {
        let idx = tid as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        self.slots[idx] = value;
    }

    /// Increment own component; returns the new value.
    pub fn tick(&mut self, tid: u16) -> u64 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum (`self ⊔= other`).
    pub fn join(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// `self ⪯ other` pointwise.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.slots.iter().enumerate().all(|(i, v)| *v <= other.get(i as u16))
    }

    /// The epoch of `tid` in this clock.
    #[inline]
    pub fn epoch(&self, tid: u16) -> Epoch {
        Epoch { tid, clock: self.get(tid) }
    }

    /// Heap bytes held.
    pub fn approx_bytes(&self) -> u64 {
        (self.slots.capacity() * 8) as u64
    }

    /// Raw slot values (index = thread slot), for state snapshots. Pairs
    /// with [`VectorClock::from_slots`]: `from_slots(vc.slot_values().to_vec())`
    /// compares equal to `vc`, including trailing zeros, so a snapshot
    /// round trip is exact.
    pub fn slot_values(&self) -> &[u64] {
        &self.slots
    }

    /// Rebuild a clock from values dumped by [`VectorClock::slot_values`].
    pub fn from_slots(slots: Vec<u64>) -> VectorClock {
        VectorClock { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_tick() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(5), 0);
        vc.set(5, 10);
        assert_eq!(vc.get(5), 10);
        assert_eq!(vc.tick(5), 11);
        assert_eq!(vc.tick(2), 1);
        assert_eq!(vc.get(2), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 7);
        let mut b = VectorClock::new();
        b.set(0, 5);
        b.set(1, 1);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 7);
    }

    #[test]
    fn epoch_leq() {
        let mut vc = VectorClock::new();
        vc.set(3, 9);
        assert!(Epoch { tid: 3, clock: 9 }.leq(&vc));
        assert!(Epoch { tid: 3, clock: 8 }.leq(&vc));
        assert!(!Epoch { tid: 3, clock: 10 }.leq(&vc));
        assert!(Epoch { tid: 7, clock: 0 }.leq(&vc));
        assert!(!Epoch { tid: 7, clock: 1 }.leq(&vc));
    }

    #[test]
    fn vc_leq() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = VectorClock::new();
        b.set(0, 2);
        b.set(1, 1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn happens_before_transitivity_via_join() {
        // t0 ticks, forks t1 (join of t0's clock); t1's work is ordered
        // after t0's pre-fork work.
        let mut t0 = VectorClock::new();
        t0.tick(0);
        let e = t0.epoch(0);
        let mut t1 = VectorClock::new();
        t1.join(&t0);
        t1.tick(1);
        assert!(e.leq(&t1));
    }
}
