//! Repair synthesis and transfer minimization over static diagnostics.
//!
//! `arbalest fix` closes the detect→repair loop: the per-diagnostic
//! validity facts out of the worklist fixpoint ([`facts`]) seed a
//! candidate walk over the [`arbalest_ir::patch`] edit lattice —
//! strengthen a map-type, clamp a map section, insert an `update` or a
//! sync, add a missing clause or host initialisation — and every
//! candidate must clear the same double oracle `fuzz-lint` enforces:
//!
//! 1. **Static**: re-running [`analyze`] on the patched program yields
//!    zero `Must` diagnostics and no `May` diagnostic whose
//!    `(kind, buffer)` key is new relative to the baseline.
//! 2. **Dynamic**: the concretized patched program executes on the real
//!    offload runtime with the ARBALEST detector attached and produces
//!    zero reports.
//!
//! Candidates are ranked by a cost model — patch size first, then the
//! modeled transfer volume ([`modeled_transfer_bytes`], which walks the
//! construct tree with a reference-counted present table and evaluates
//! symbolic section bounds by `Expr` interval arithmetic) — so the
//! accepted repair is the smallest, cheapest one that verifies.
//!
//! `arbalest optimize` runs the same machinery in reverse
//! ([`minimize_transfers`]): weaken `tofrom → to`, demote a copy to
//! `alloc`, drop a dead `update`, shrink a mapped section to the accessed
//! interval — accepting an edit only if it strictly reduces modeled bytes
//! while keeping the static diagnostic list byte-identical and the
//! dynamic report stream unchanged (report parity).

use crate::{analyze, Diagnostic, Severity};
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_ir::patch::{walk_paths, Edit, Patch};
use arbalest_ir::{interp, Binding, BufId, BufferDecl, Certainty, MapClause, Node, Program, Sect};
use arbalest_offload::mapping::MapType;
use arbalest_offload::report::ReportKind;
use arbalest_offload::runtime::{Config, Runtime};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Validity facts.
// ---------------------------------------------------------------------------

/// One diagnostic projected into the shape candidate enumeration keys
/// on: which buffer, which violation class, which side of the mapping,
/// at what severity.
#[derive(Debug, Clone)]
pub struct ValidityFact {
    /// Affected buffer id (resolved from the diagnostic's name).
    pub buf: BufId,
    /// Affected buffer's registration name.
    pub buffer: String,
    /// Violation class.
    pub kind: ReportKind,
    /// `Must` (repair target) vs `May` (preserved, never widened).
    pub severity: Severity,
    /// True when the invalid read is on the host view (OV side).
    pub host_side: bool,
    /// Affected element interval `[lo, hi)`.
    pub section: (u64, u64),
}

/// Project the analyzer's diagnostics into [`ValidityFact`]s, dropping
/// any whose buffer name no longer resolves (cannot happen for
/// diagnostics of the same program, but the API stays total).
pub fn facts(p: &Program, diags: &[Diagnostic]) -> Vec<ValidityFact> {
    diags
        .iter()
        .filter_map(|d| {
            let buf = p.buffers.iter().position(|b| b.name == d.buffer)?;
            Some(ValidityFact {
                buf: BufId(buf as u32),
                buffer: d.buffer.clone(),
                kind: d.kind,
                severity: d.severity,
                host_side: d.device.is_host(),
                section: d.section,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Cost model: modeled transfer bytes.
// ---------------------------------------------------------------------------

/// Upper hull of the declared length in elements.
fn decl_len_hull(p: &Program, d: &BufferDecl) -> u64 {
    match &d.sym_len {
        Some(e) => e
            .range(&p.params, None)
            .1
            .map(|v| v.max(0) as u64)
            .unwrap_or(d.len),
        None => d.len,
    }
}

/// Conservative `[lo, hi)` element bounds of a section, using interval
/// arithmetic for symbolic bounds. `Elems` is deliberately *not* clamped
/// to the declaration: an oversized section transfers oversized bytes,
/// and the cost model must see that.
fn sect_bounds(p: &Program, d: &BufferDecl, s: &Sect) -> (u64, u64) {
    match s {
        Sect::Full => (0, decl_len_hull(p, d)),
        Sect::Elems { start, len } => (*start, start.saturating_add(*len)),
        Sect::Sym { start, len } => {
            let lo = start.range(&p.params, None).0.map(|v| v.max(0) as u64).unwrap_or(0);
            let ln = len
                .range(&p.params, None)
                .1
                .map(|v| v.max(0) as u64)
                .unwrap_or_else(|| decl_len_hull(p, d));
            (lo, lo.saturating_add(ln))
        }
    }
}

/// Modeled bytes moved by one mapped section.
fn sect_bytes(p: &Program, buf: BufId, s: &Sect) -> u64 {
    let d = &p.buffers[buf.0 as usize];
    let (lo, hi) = sect_bounds(p, d, s);
    hi.saturating_sub(lo).saturating_mul(d.elem_size)
}

#[derive(Default, Clone)]
struct TransferSim {
    /// `(device, buffer) -> (mapped section bytes, refcount)`.
    present: BTreeMap<(u16, u32), (u64, u32)>,
    bytes: u64,
}

impl TransferSim {
    fn entry(&mut self, p: &Program, dev: u16, c: &MapClause) {
        let key = (dev, c.buf.0);
        if let Some(e) = self.present.get_mut(&key) {
            e.1 += 1;
            return;
        }
        let b = sect_bytes(p, c.buf, &c.sect);
        if c.map_type.copies_to_device() {
            self.bytes = self.bytes.saturating_add(b);
        }
        if !matches!(c.map_type, MapType::Release | MapType::Delete) {
            self.present.insert(key, (b, 1));
        }
    }

    fn exit(&mut self, dev: u16, c: &MapClause) {
        let key = (dev, c.buf.0);
        let Some(e) = self.present.get_mut(&key) else { return };
        if matches!(c.map_type, MapType::Delete) {
            e.1 = 0;
        } else {
            e.1 = e.1.saturating_sub(1);
        }
        if e.1 == 0 {
            let b = e.0;
            self.present.remove(&key);
            if c.map_type.copies_from_device() {
                self.bytes = self.bytes.saturating_add(b);
            }
        }
    }

    fn run(&mut self, p: &Program, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Target(t) => {
                    let d = t.device.0;
                    for c in &t.maps {
                        self.entry(p, d, c);
                    }
                    for c in &t.maps {
                        self.exit(d, c);
                    }
                }
                Node::TargetData { device, maps, body } => {
                    for c in maps {
                        self.entry(p, device.0, c);
                    }
                    self.run(p, body);
                    for c in maps {
                        self.exit(device.0, c);
                    }
                }
                Node::EnterData { device, maps } => {
                    for c in maps {
                        self.entry(p, device.0, c);
                    }
                }
                Node::ExitData { device, maps } => {
                    for c in maps {
                        self.exit(device.0, c);
                    }
                }
                Node::Update { device, buf, .. } => {
                    if let Some(e) = self.present.get(&(device.0, buf.0)) {
                        self.bytes = self.bytes.saturating_add(e.0);
                    }
                }
                Node::Loop { trip, body } => {
                    // One symbolic iteration stands in for all: the bytes it
                    // moves scale by the trip hull (present-table state after
                    // the first iteration persists, which matches steady-state
                    // mapping behaviour and keeps the estimate cheap).
                    let before = self.bytes;
                    self.run(p, body);
                    let delta = self.bytes - before;
                    let (lo, hi) = trip.0.range(&p.params, None);
                    let reps = hi.or(lo).map(|v| v.max(0) as u64).unwrap_or(1);
                    self.bytes = before.saturating_add(delta.saturating_mul(reps));
                }
                Node::If { then_, else_, .. } => {
                    // Take the costlier arm; keep the then-arm's table.
                    let mut alt = self.clone();
                    self.run(p, then_);
                    alt.run(p, else_);
                    self.bytes = self.bytes.max(alt.bytes);
                }
                Node::Host(_) | Node::Taskwait | Node::Wait { .. } => {}
            }
        }
    }
}

/// Modeled host↔device transfer volume of a program, in bytes: a
/// present-table walk of the construct tree applying Table I semantics
/// (entry copy for `to`/`tofrom` on first map, exit copy for
/// `from`/`tofrom` on last unmap, per-`update` copies of the mapped
/// section), with symbolic bounds resolved to their interval hulls.
/// This is the repair cost model's second key and the quantity
/// `arbalest optimize` minimizes.
pub fn modeled_transfer_bytes(p: &Program) -> u64 {
    let mut sim = TransferSim::default();
    sim.run(p, &p.nodes);
    sim.bytes
}

// ---------------------------------------------------------------------------
// Oracles.
// ---------------------------------------------------------------------------

/// Stable fingerprint of one diagnostic, for byte-identical parity.
fn diag_line(d: &Diagnostic) -> String {
    format!(
        "[{}] {} {} {:?} on {} | {} | {}",
        d.severity.label(),
        d.kind.label(),
        d.buffer,
        d.section,
        d.device,
        d.message,
        d.suggested_fix
    )
}

/// Static acceptance for a repair: zero `Must`, and every remaining
/// `May` key already existed in the baseline.
fn static_fix_ok(baseline: &[Diagnostic], patched: &[Diagnostic]) -> bool {
    if patched.iter().any(|d| d.severity == Severity::Must) {
        return false;
    }
    let base: BTreeSet<(&str, &str)> =
        baseline.iter().map(|d| (d.kind.label(), d.buffer.as_str())).collect();
    patched.iter().all(|d| base.contains(&(d.kind.label(), d.buffer.as_str())))
}

/// Execute the (concretized) program on the real offload runtime with
/// the ARBALEST detector attached; return the sorted report keys, or the
/// interpreter error rendered.
fn dynamic_keys(p: &Program, b: &Binding) -> Result<Vec<String>, String> {
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool);
    interp::run(p, b, &rt).map_err(|e| e.to_string())?;
    let mut keys: Vec<String> = rt
        .reports()
        .iter()
        .map(|r| format!("{} {}", r.kind.label(), r.buffer.clone().unwrap_or_default()))
        .collect();
    keys.sort();
    Ok(keys)
}

// ---------------------------------------------------------------------------
// Candidate enumeration.
// ---------------------------------------------------------------------------

/// A map-clause site: the owning node's path plus the clause index.
struct ClauseSite {
    path: Vec<usize>,
    clause: usize,
    map_type: MapType,
    sect: Sect,
}

fn clause_sites(p: &Program, buf: BufId) -> Vec<ClauseSite> {
    let mut out = Vec::new();
    walk_paths(p, &mut |path, n| {
        let maps = match n {
            Node::Target(t) => &t.maps,
            Node::TargetData { maps, .. } | Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => maps,
            _ => return,
        };
        for (i, c) in maps.iter().enumerate() {
            if c.buf == buf {
                out.push(ClauseSite {
                    path: path.to_vec(),
                    clause: i,
                    map_type: c.map_type,
                    sect: c.sect.clone(),
                });
            }
        }
    });
    out
}

/// Paths of every `Host` access of `buf` matching `is_write`.
fn host_sites(p: &Program, buf: BufId, is_write: bool) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    walk_paths(p, &mut |path, n| {
        if let Node::Host(a) = n {
            if a.buf == buf && a.is_write == is_write {
                out.push(path.to_vec());
            }
        }
    });
    out
}

/// Paths of every `Target` whose kernel reads `buf`.
fn target_read_sites(p: &Program, buf: BufId) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    walk_paths(p, &mut |path, n| {
        if let Node::Target(t) = n {
            if t.body.iter().any(|a| a.buf == buf && !a.is_write) {
                out.push(path.to_vec());
            }
        }
    });
    out
}

/// Clamp an oversized section to the declared extent.
fn clamped_sect(p: &Program, buf: BufId, s: &Sect) -> Option<Sect> {
    let d = &p.buffers[buf.0 as usize];
    let extent = decl_len_hull(p, d);
    let (lo, hi) = sect_bounds(p, d, s);
    if hi <= extent {
        return None;
    }
    let start = lo.min(extent);
    Some(Sect::Elems { start, len: extent - start })
}

/// Repair candidates for one `Must` fact, in the synthesis-lattice order
/// the cost model then refines. Keys are stable strings used for
/// dedup and deterministic tie-breaking.
fn fix_candidates(p: &Program, f: &ValidityFact, out: &mut BTreeMap<String, Patch>) {
    let sites = clause_sites(p, f.buf);
    match f.kind {
        ReportKind::MappingUum | ReportKind::MappingUsd => {
            for s in &sites {
                // Strengthen the map-type so the needed copy happens.
                let stronger: &[MapType] = match s.map_type {
                    MapType::Alloc => &[MapType::To, MapType::ToFrom],
                    MapType::From => &[MapType::ToFrom],
                    MapType::To => &[MapType::ToFrom],
                    // A release that should have copied back: on its own it
                    // fixes a host-side read, and paired with a later
                    // copy-in it threads a value between two target phases.
                    MapType::Release => &[MapType::From],
                    _ => &[],
                };
                for &t in stronger {
                    // `tofrom`/`from` halves only matter when some read is
                    // downstream of the copy they add; the oracles reject
                    // the useless ones, this gate just prunes noise.
                    if f.host_side || t.copies_to_device() || matches!(s.map_type, MapType::Release) {
                        out.insert(
                            format!("type {:?}#{} {t}", s.path, s.clause),
                            Patch::single(Edit::SetMapType {
                                path: s.path.clone(),
                                clause: s.clause,
                                map_type: t,
                            }),
                        );
                    }
                }
            }
            if f.host_side {
                // Sync the OV before the faulting host read.
                for at in host_sites(p, f.buf, false) {
                    out.insert(
                        format!("updfrom {at:?}"),
                        Patch::single(Edit::InsertUpdate { at, to_device: false, buf: f.buf }),
                    );
                }
            } else {
                // Refresh the CV before the faulting kernel.
                for at in target_read_sites(p, f.buf) {
                    out.insert(
                        format!("updto {at:?}"),
                        Patch::single(Edit::InsertUpdate { at, to_device: true, buf: f.buf }),
                    );
                }
                // A kernel with no clause at all for the buffer is missing
                // its mapping outright.
                for at in target_read_sites(p, f.buf) {
                    if !sites.iter().any(|s| s.path == at) {
                        out.insert(
                            format!("addmap {at:?}"),
                            Patch::single(Edit::AddMapClause {
                                path: at,
                                clause: MapClause { buf: f.buf, map_type: MapType::To, sect: Sect::Full },
                            }),
                        );
                    }
                }
            }
            // UUM on a buffer the host never definitely initialises: the
            // missing init loop is the repair (§VI-G's data-dependent case
            // collapses to `Must` init).
            let decl = &p.buffers[f.buf.0 as usize];
            if !matches!(decl.host_init, Some((Certainty::Must, _))) {
                out.insert(format!("hostinit {}", f.buf.0), Patch::single(Edit::SetHostInit { buf: f.buf }));
            }
        }
        ReportKind::MappingOverflow => {
            for s in &sites {
                if let Some(sect) = clamped_sect(p, f.buf, &s.sect) {
                    out.insert(
                        format!("sect {:?}#{}", s.path, s.clause),
                        Patch::single(Edit::SetMapSect { path: s.path.clone(), clause: s.clause, sect }),
                    );
                }
            }
        }
        ReportKind::DataRace => {
            // Sync before each racing host access.
            for at in host_sites(p, f.buf, false).into_iter().chain(host_sites(p, f.buf, true)) {
                out.insert(format!("taskwait {at:?}"), Patch::single(Edit::InsertTaskwait { at }));
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Fix synthesis.
// ---------------------------------------------------------------------------

/// Result of [`synthesize_fix`] on one program.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// Program name.
    pub name: String,
    /// Baseline `Must` diagnostics.
    pub baseline_must: usize,
    /// Baseline `May` diagnostics.
    pub baseline_may: usize,
    /// The accepted repair, when one was needed and found.
    pub patch: Option<Patch>,
    /// The repaired program.
    pub patched: Option<Program>,
    /// Unified IR diff of the accepted repair (empty when none).
    pub diff: String,
    /// Candidates enumerated (verified or not).
    pub candidates_tried: usize,
    /// Modeled transfer bytes before the repair.
    pub bytes_before: u64,
    /// Modeled transfer bytes after the repair (== before when none).
    pub bytes_after: u64,
}

impl FixOutcome {
    /// No `Must` diagnostics to begin with.
    pub fn clean(&self) -> bool {
        self.baseline_must == 0
    }

    /// A verified repair was synthesized.
    pub fn repaired(&self) -> bool {
        self.patch.is_some()
    }

    /// The program is clean or was repaired — the `fix all` gate.
    pub fn ok(&self) -> bool {
        self.clean() || self.repaired()
    }
}

/// Synthesize a verified repair for every `Must` diagnostic of
/// `program`. Candidates are single edits first (then pairs, should no
/// single edit clear both oracles), ranked by patch size then modeled
/// transfer bytes; the first candidate accepted by both oracles wins.
pub fn synthesize_fix(name: &str, program: &Program, binding: &Binding) -> FixOutcome {
    let baseline = analyze(program);
    let baseline_must = baseline.iter().filter(|d| d.severity == Severity::Must).count();
    let baseline_may = baseline.len() - baseline_must;
    let bytes_before = modeled_transfer_bytes(program);
    let mut outcome = FixOutcome {
        name: name.to_string(),
        baseline_must,
        baseline_may,
        patch: None,
        patched: None,
        diff: String::new(),
        candidates_tried: 0,
        bytes_before,
        bytes_after: bytes_before,
    };
    if baseline_must == 0 {
        return outcome;
    }

    let mut candidates: BTreeMap<String, Patch> = BTreeMap::new();
    for f in facts(program, &baseline) {
        if f.severity == Severity::Must {
            fix_candidates(program, &f, &mut candidates);
        }
    }
    // Fallback tier: pair up the single edits (bounded) in case no
    // single edit repairs a program with several independent faults.
    let singles: Vec<(String, Patch)> = candidates.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    for (i, (ka, a)) in singles.iter().enumerate().take(12) {
        for (kb, b) in singles.iter().skip(i + 1).take(12) {
            let mut edits = a.edits.clone();
            edits.extend(b.edits.iter().cloned());
            candidates.insert(format!("pair {ka} + {kb}"), Patch { edits });
        }
    }

    // Rank: patch size, then modeled bytes of the patched program, then
    // the stable key. Unapplicable candidates drop out here.
    let mut ranked: Vec<(usize, u64, String, Patch, Program)> = Vec::new();
    for (key, patch) in candidates {
        let Ok(patched) = patch.apply(program) else { continue };
        ranked.push((patch.edits.len(), modeled_transfer_bytes(&patched), key, patch, patched));
    }
    ranked.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    outcome.candidates_tried = ranked.len();

    for (_, bytes_after, _, patch, patched) in ranked {
        if !static_fix_ok(&baseline, &analyze(&patched)) {
            continue;
        }
        match dynamic_keys(&patched, binding) {
            Ok(keys) if keys.is_empty() => {}
            _ => continue,
        }
        outcome.diff = patch.render_diff(program).unwrap_or_default();
        outcome.bytes_after = bytes_after;
        outcome.patch = Some(patch);
        outcome.patched = Some(patched);
        break;
    }
    outcome
}

// ---------------------------------------------------------------------------
// Transfer minimization.
// ---------------------------------------------------------------------------

/// Result of [`minimize_transfers`] on one program.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// Program name.
    pub name: String,
    /// The accumulated weakening edits (empty when already minimal).
    pub patch: Patch,
    /// The optimized program (== input when already minimal).
    pub patched: Program,
    /// Unified IR diff (empty when already minimal).
    pub diff: String,
    /// Modeled transfer bytes before.
    pub bytes_before: u64,
    /// Modeled transfer bytes after.
    pub bytes_after: u64,
    /// Greedy rounds that accepted an edit.
    pub rounds: usize,
}

impl OptimizeOutcome {
    /// Bytes removed by the optimization.
    pub fn saved(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

/// Union of `[lo, hi)` element intervals of accesses selected by `pick`.
fn access_union(p: &Program, buf: BufId, pick: impl Fn(&Node) -> Vec<Sect>) -> Option<(u64, u64)> {
    let d = &p.buffers[buf.0 as usize];
    let mut acc: Option<(u64, u64)> = None;
    walk_paths(p, &mut |_, n| {
        for s in pick(n) {
            let (lo, hi) = sect_bounds(p, d, &s);
            acc = Some(match acc {
                None => (lo, hi),
                Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
            });
        }
    });
    acc
}

/// Weakening candidates over the current program: map-type demotions,
/// dead-`update` removal, and shrinking copy sections to the interval
/// the program provably accesses on the receiving side.
fn optimize_candidates(p: &Program) -> BTreeMap<String, Patch> {
    let mut out = BTreeMap::new();
    walk_paths(p, &mut |path, n| {
        let maps = match n {
            Node::Target(t) => &t.maps,
            Node::TargetData { maps, .. } | Node::EnterData { maps, .. } | Node::ExitData { maps, .. } => maps,
            _ => {
                if matches!(n, Node::Update { .. }) {
                    out.insert(
                        format!("drop {path:?}"),
                        Patch::single(Edit::RemoveNode { at: path.to_vec() }),
                    );
                }
                return;
            }
        };
        for (i, c) in maps.iter().enumerate() {
            let weaker: &[MapType] = match c.map_type {
                MapType::ToFrom => &[MapType::To, MapType::From],
                MapType::To => &[MapType::Alloc],
                MapType::From => &[MapType::Alloc],
                _ => &[],
            };
            for &t in weaker {
                out.insert(
                    format!("type {path:?}#{i} {t}"),
                    Patch::single(Edit::SetMapType { path: path.to_vec(), clause: i, map_type: t }),
                );
            }
            // Shrink a full-extent mapping to the interval the program
            // provably touches: every kernel access must stay inside the
            // mapped section, and a copy-back must still cover the host
            // reads. The parity oracle proves the candidate, this union
            // just keeps enumeration from proposing obvious overflows.
            if matches!(c.sect, Sect::Full)
                && (c.map_type.copies_to_device() || c.map_type.copies_from_device())
            {
                let buf = c.buf;
                let from = c.map_type.copies_from_device();
                let union = access_union(p, buf, |n| match n {
                    Node::Target(t) => t
                        .body
                        .iter()
                        .filter(|a| a.buf == buf)
                        .map(|a| a.sect.clone())
                        .collect(),
                    Node::Host(a) if from && a.buf == buf && !a.is_write => vec![a.sect.clone()],
                    _ => vec![],
                });
                if let Some((lo, hi)) = union {
                    let d = &p.buffers[buf.0 as usize];
                    let extent = decl_len_hull(p, d);
                    if hi > lo && hi.min(extent).saturating_sub(lo) < extent {
                        let hi = hi.min(extent);
                        out.insert(
                            format!("shrink {path:?}#{i}"),
                            Patch::single(Edit::SetMapSect {
                                path: path.to_vec(),
                                clause: i,
                                sect: Sect::Elems { start: lo, len: hi - lo },
                            }),
                        );
                    }
                }
            }
        }
    });
    out
}

/// Greedily delete or narrow provably redundant transfers. An edit is
/// accepted only when it strictly reduces [`modeled_transfer_bytes`]
/// while the static diagnostic list stays byte-identical and the
/// dynamic run produces the same reports (and the same interpreter
/// outcome) as the unoptimized program — report parity, proved per edit.
pub fn minimize_transfers(name: &str, program: &Program, binding: &Binding) -> OptimizeOutcome {
    let baseline_diags: Vec<String> = analyze(program).iter().map(diag_line).collect();
    let baseline_dynamic = dynamic_keys(program, binding);
    let bytes_before = modeled_transfer_bytes(program);

    let mut current = program.clone();
    let mut bytes_cur = bytes_before;
    let mut edits: Vec<Edit> = Vec::new();
    let mut rounds = 0;
    // Candidates rejected by an oracle stay rejected while node paths
    // are stable, so remember them across rounds and only forget when an
    // accepted edit inserts or removes nodes (which shifts paths).
    let mut rejected: BTreeSet<String> = BTreeSet::new();

    'outer: for _ in 0..64 {
        let mut ranked: Vec<(u64, String, Patch, Program)> = Vec::new();
        for (key, patch) in optimize_candidates(&current) {
            if rejected.contains(&key) {
                continue;
            }
            let Ok(patched) = patch.apply(&current) else { continue };
            let b = modeled_transfer_bytes(&patched);
            if b < bytes_cur {
                ranked.push((b, key, patch, patched));
            }
        }
        ranked.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for (b, key, patch, patched) in ranked {
            let diags: Vec<String> = analyze(&patched).iter().map(diag_line).collect();
            if diags != baseline_diags || dynamic_keys(&patched, binding) != baseline_dynamic {
                rejected.insert(key);
                continue;
            }
            if patch.edits.iter().any(|e| matches!(e, Edit::RemoveNode { .. } | Edit::InsertUpdate { .. } | Edit::InsertTaskwait { .. })) {
                rejected.clear();
            }
            edits.extend(patch.edits);
            current = patched;
            bytes_cur = b;
            rounds += 1;
            continue 'outer;
        }
        break;
    }

    let patch = Patch { edits };
    let diff = if patch.edits.is_empty() {
        String::new()
    } else {
        patch.render_diff(program).unwrap_or_default()
    };
    OptimizeOutcome {
        name: name.to_string(),
        patch,
        patched: current,
        diff,
        bytes_before,
        bytes_after: bytes_cur,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_ir::ProgramBuilder;

    #[test]
    fn fix_strengthens_an_alloc_that_needed_a_copy() {
        let mut b = ProgramBuilder::new("uum-alloc");
        let a = b.buffer_init("a", 8, 4);
        b.target().map_alloc(a).reads(a).done();
        let p = b.build();
        let out = synthesize_fix("uum-alloc", &p, &Binding::new());
        assert_eq!(out.baseline_must, 1);
        assert!(out.repaired(), "tried {} candidates", out.candidates_tried);
        let patch = out.patch.as_ref().unwrap();
        assert_eq!(patch.edits.len(), 1);
        assert_eq!(patch.describe(&p).unwrap(), vec!["map(alloc: a) -> map(to: a)"]);
        assert_eq!(out.bytes_before, 0);
        assert_eq!(out.bytes_after, 32);
        assert!(out.diff.contains("+target map(to: a)"), "{}", out.diff);
        // Both oracles on the patched program, independently re-checked.
        let patched = out.patched.as_ref().unwrap();
        assert!(analyze(patched).is_empty());
        assert_eq!(dynamic_keys(patched, &Binding::new()), Ok(vec![]));
    }

    #[test]
    fn fix_clamps_an_oversized_section() {
        let mut b = ProgramBuilder::new("bo-sect");
        let a = b.buffer_init("a", 8, 4);
        b.target().map_to_sec(a, 0, 6).reads(a).done();
        let p = b.build();
        let out = synthesize_fix("bo-sect", &p, &Binding::new());
        assert!(out.repaired());
        let patch = out.patch.as_ref().unwrap();
        assert_eq!(patch.describe(&p).unwrap(), vec!["map section a[0:6] -> a[0:4]"]);
        assert_eq!(out.bytes_before, 48);
        assert_eq!(out.bytes_after, 32);
    }

    #[test]
    fn fix_reports_clean_when_there_is_nothing_to_do() {
        let mut b = ProgramBuilder::new("clean");
        let a = b.buffer_init("a", 8, 4);
        b.target().map_to(a).reads(a).done();
        let p = b.build();
        let out = synthesize_fix("clean", &p, &Binding::new());
        assert!(out.clean() && out.ok() && !out.repaired());
        assert_eq!(out.candidates_tried, 0);
    }

    #[test]
    fn optimize_weakens_a_dead_copy_back() {
        let mut b = ProgramBuilder::new("dead-back");
        let a = b.buffer_init("a", 8, 4);
        b.target().map_tofrom(a).reads(a).done();
        let p = b.build();
        let out = minimize_transfers("dead-back", &p, &Binding::new());
        assert_eq!(out.bytes_before, 64);
        assert_eq!(out.bytes_after, 32);
        assert_eq!(out.patch.describe(&p).unwrap(), vec!["map(tofrom: a) -> map(to: a)"]);
        assert!(analyze(&out.patched).is_empty());
    }

    #[test]
    fn optimize_drops_a_dead_update() {
        let mut b = ProgramBuilder::new("dead-upd");
        let a = b.buffer_init("a", 8, 4);
        b.data().map_to(a).scope(|p| {
            p.target().map_to(a).reads(a).done();
            p.update_from(a);
        });
        let p = b.build();
        let out = minimize_transfers("dead-upd", &p, &Binding::new());
        assert_eq!(out.bytes_before, 64);
        assert_eq!(out.bytes_after, 32);
        assert!(out
            .patch
            .describe(&p)
            .unwrap()
            .iter()
            .any(|l| l.contains("remove target update from(a)")));
    }

    #[test]
    fn optimize_preserves_a_needed_copy() {
        // The host reads the result: tofrom cannot weaken, the update
        // cannot drop — parity pins every transfer.
        let mut b = ProgramBuilder::new("needed");
        let a = b.buffer_init("a", 8, 4);
        b.target().map_tofrom(a).reads(a).writes(a).done();
        b.host_read(a);
        let p = b.build();
        let out = minimize_transfers("needed", &p, &Binding::new());
        assert_eq!(out.bytes_before, out.bytes_after);
        assert!(out.patch.edits.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn optimize_shrinks_a_copy_back_to_the_read_interval() {
        let mut b = ProgramBuilder::new("shrink");
        let a = b.buffer("a", 8, 8);
        b.target().map_from(a).writes_sec(a, 0, 1).done();
        b.host_read_sec(a, 0, 1);
        let p = b.build();
        let out = minimize_transfers("shrink", &p, &Binding::new());
        // The copy-back narrows from the full 64 bytes to a[0:1].
        assert_eq!(out.bytes_before, 64);
        assert_eq!(out.bytes_after, 8);
        assert_eq!(out.patch.describe(&p).unwrap(), vec!["map section a -> a[0:1]"]);
    }

    #[test]
    fn modeled_bytes_follow_table_i() {
        let mut b = ProgramBuilder::new("bytes");
        let a = b.buffer_init("a", 8, 4); // 32B
        let c = b.buffer_init("c", 4, 2); // 8B
        b.enter_data(vec![MapClause { buf: a, map_type: MapType::To, sect: Sect::Full }]);
        b.target().map_to(a).map_tofrom(c).reads(a).reads(c).writes(c).done();
        b.exit_data(vec![MapClause { buf: a, map_type: MapType::From, sect: Sect::Full }]);
        let p = b.build();
        // enter to(a)=32, target: a present (0) + c in/out (8+8), exit from(a)=32.
        assert_eq!(modeled_transfer_bytes(&p), 80);
    }
}
