//! # arbalest-static
//!
//! A static data-mapping analyzer: the §VI-G OMPSan-style companion to
//! the dynamic detector. It abstractly interprets an [`arbalest_ir`]
//! [`Program`] with the Fig-4 VSM **lifted to a may/must lattice** —
//! each buffer section tracks two `(valid_mask, init_mask)` pairs, one
//! for facts that hold on *every* execution (`must`) and one for facts
//! that hold on *some* execution (`may`). Because every VSM transition
//! is monotone in mask inclusion, lifting is exact: a definite
//! operation applies [`arbalest_core::vsm::apply`] componentwise, a
//! data-dependent one joins the result with the unchanged state.
//!
//! Programs may carry control flow and symbolic bounds:
//!
//! * `Node::If` analyses both arms from the same entry state and joins
//!   them at the merge point (may-union, must-intersection);
//!   diagnostics raised inside an arm are demoted to `May`.
//! * `Node::Loop` is widened to a fixpoint: the body is re-analysed
//!   from the accumulated invariant until the abstract state stops
//!   changing, then one emitting pass runs from the invariant. A `Must`
//!   fact that survives one abstract iteration stays `Must`; anything
//!   clobbered on any path decays to `May`. When the trip count's lower
//!   bound is zero the post-state is the invariant itself and body
//!   diagnostics are demoted to `May`.
//! * Array sections and buffer extents may be affine
//!   [`arbalest_ir::Expr`]s over program parameters and the innermost
//!   loop's induction variable. Bounds are compared with three-valued
//!   interval arithmetic; whenever two bounds are incomparable the
//!   affected buffer state collapses to a single joined segment and the
//!   operation applies as `May` — a sound fallback that never
//!   manufactures a `Must` fact.
//!
//! Faulting reads are classified by severity:
//!
//! * [`Severity::Must`] — the read's location is invalid in the *may*
//!   state, so every execution reaching it faults. The soundness
//!   contract (enforced by `tests/static_soundness.rs` and the
//!   `arbalest fuzz-lint` differential oracle in [`differential`]) is
//!   that each such diagnostic is confirmed by the dynamic detector.
//! * [`Severity::May`] — data-dependent: invalid only in the *must*
//!   state, or on a data-dependent access. These are the cases §VI-G
//!   says a static tool cannot decide.
//!
//! Table I map-type/refcount semantics run over an abstract present
//! table (entries carry symbolic section bounds, a saturating refcount
//! with an exactness bit, and a `sure` presence bit so joins stay
//! sound), array sections get interval arithmetic for the BO extension,
//! and a worklist pass over the `depend`/`nowait` task graph orders
//! pending device tasks — unordered overlapping effects surface as
//! `May` data races. Diagnostics carry the same `suggested_fix`
//! vocabulary ([`arbalest_offload::report::hints`]) as dynamic reports.

#![warn(missing_docs)]

pub mod differential;
pub mod repair;

use std::collections::{BTreeMap, BTreeSet};

use arbalest_core::vsm::{self, StorageLoc, ViolationKind, VsmOp};
use arbalest_ir::{
    Access, BufId, Certainty, DependClause, Expr, MapClause, Node, ParamDecl, Program, TargetId,
    TargetNode, Trip,
};
use arbalest_offload::addr::DeviceId;
use arbalest_offload::mapping::MapType;
use arbalest_offload::report::{hints, Report, ReportKind};
use arbalest_offload::sections;
use arbalest_shadow::GranuleState;

/// How certain the analyzer is that a diagnostic fires at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Fires on every execution that reaches the construct.
    Must,
    /// Data-dependent; the dynamic detector has the last word.
    May,
}

impl Severity {
    /// Stable lowercase label (`must` / `may`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Must => "must",
            Severity::May => "may",
        }
    }

    fn of(c: Certainty) -> Severity {
        match c {
            Certainty::Must => Severity::Must,
            Certainty::May => Severity::May,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One static finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// `Must` (definite) vs `May` (data-dependent).
    pub severity: Severity,
    /// The violation class, shared with dynamic reports.
    pub kind: ReportKind,
    /// Affected buffer's registration name.
    pub buffer: String,
    /// Device on whose view the fault occurs (host for OV reads).
    pub device: DeviceId,
    /// Affected element interval `[lo, hi)`. Symbolic bounds are
    /// projected to a conservative numeric hull; exact for concrete
    /// programs.
    pub section: (u64, u64),
    /// Human-readable description.
    pub message: String,
    /// Repair hint, drawn from [`hints`] — the same vocabulary dynamic
    /// reports use, so the two can be compared.
    pub suggested_fix: String,
}

impl Diagnostic {
    /// Convert to the shared [`Report`] shape for Archer-style
    /// rendering next to dynamic findings.
    pub fn to_report(&self) -> Report {
        Report {
            tool: "arbalest-static",
            kind: self.kind,
            message: format!("[{}] {}", self.severity, self.message),
            buffer: Some(self.buffer.clone()),
            device: self.device,
            addr: self.section.0,
            size: (self.section.1 - self.section.0) as usize,
            loc: None,
            prev: None,
            suggested_fix: Some(self.suggested_fix.clone()),
            provenance: Vec::new(),
        }
    }
}

/// Analyze a program, returning its diagnostics (deduplicated, `Must`
/// first, then by buffer and section).
pub fn analyze(p: &Program) -> Vec<Diagnostic> {
    let mut a = Analyzer::new(p);
    a.exec_nodes(&p.nodes);
    a.finish()
}

// ---------------------------------------------------------------------
// The may/must lattice
// ---------------------------------------------------------------------

/// Abstract VSM state of one buffer section: the `(valid, init)` mask
/// pairs of the must- and may-approximations. Invariant: `must ⊆ may`
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Abs {
    must_valid: u8,
    must_init: u8,
    may_valid: u8,
    may_init: u8,
}

impl Abs {
    const BOTTOM: Abs = Abs { must_valid: 0, must_init: 0, may_valid: 0, may_init: 0 };
    /// No must-facts, every may-fact: the absorbing top of the lattice,
    /// used to force loop convergence if widening ever stalls.
    const TOP: Abs = Abs { must_valid: 0, must_init: 0, may_valid: 0xFF, may_init: 0xFF };

    fn gran(valid: u8, init: u8) -> GranuleState {
        GranuleState { valid_mask: valid, init_mask: init, ..Default::default() }
    }

    /// Apply a VSM op that executes on every run: componentwise
    /// `vsm::apply` (exact, by monotonicity of every transition).
    fn step_must(self, op: VsmOp) -> Abs {
        let must = vsm::apply(Self::gran(self.must_valid, self.must_init), op).0;
        let may = vsm::apply(Self::gran(self.may_valid, self.may_init), op).0;
        Abs {
            must_valid: must.valid_mask,
            must_init: must.init_mask,
            may_valid: may.valid_mask,
            may_init: may.init_mask,
        }
    }

    /// Apply a VSM op that may or may not execute: join with the
    /// unchanged state (may-union, must-intersection).
    fn step_may(self, op: VsmOp) -> Abs {
        self.join(self.step_must(op))
    }

    fn step(self, op: VsmOp, c: Certainty) -> Abs {
        match c {
            Certainty::Must => self.step_must(op),
            Certainty::May => self.step_may(op),
        }
    }

    fn join(self, o: Abs) -> Abs {
        Abs {
            must_valid: self.must_valid & o.must_valid,
            must_init: self.must_init & o.must_init,
            may_valid: self.may_valid | o.may_valid,
            may_init: self.may_init | o.may_init,
        }
    }

    /// Static read check of the location with mask `bit`, for an access
    /// with certainty `c`. Returns the violation and its severity, or
    /// `None` when the read is definitely clean.
    fn check_read(self, bit: u8, c: Certainty) -> Option<(Severity, ViolationKind)> {
        let kind = if self.must_init & bit != 0 { ViolationKind::Usd } else { ViolationKind::Uum };
        if self.may_valid & bit == 0 {
            // Invalid on every execution: faults whenever the access runs.
            Some((Severity::of(c), kind))
        } else if self.must_valid & bit == 0 {
            // Invalid on some execution only.
            Some((Severity::May, kind))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Three-valued symbolic bound arithmetic
// ---------------------------------------------------------------------

/// Comparison context: the program's parameter ranges plus the
/// innermost loop's induction-variable range (absent outside loops).
#[derive(Clone, Copy)]
struct Cx<'p> {
    params: &'p [ParamDecl],
    iv: Option<(u64, Option<u64>)>,
}

impl Cx<'_> {
    /// Three-valued `a <= b`, with the iv bounded by the enclosing trip.
    fn le(&self, a: &Expr, b: &Expr) -> Option<bool> {
        if a == b {
            return Some(true);
        }
        let (lo, hi) = b.sub(a).range(self.params, self.iv);
        if matches!(lo, Some(l) if l >= 0) {
            Some(true)
        } else if matches!(hi, Some(h) if h < 0) {
            Some(false)
        } else {
            None
        }
    }

    /// Three-valued `a < b`.
    fn lt(&self, a: &Expr, b: &Expr) -> Option<bool> {
        if a == b {
            return Some(false);
        }
        let (lo, hi) = b.sub(a).range(self.params, self.iv);
        if matches!(lo, Some(l) if l >= 1) {
            Some(true)
        } else if matches!(hi, Some(h) if h <= 0) {
            Some(false)
        } else {
            None
        }
    }

    /// Conservative lower numeric projection of a bound (exact for
    /// constants), for diagnostics and the race pass.
    fn proj_lo(&self, e: &Expr) -> u64 {
        match e.range(self.params, self.iv).0 {
            Some(v) => v.clamp(0, u64::MAX as i128) as u64,
            None => 0,
        }
    }

    /// Conservative upper numeric projection of a bound (exact for
    /// constants).
    fn proj_hi(&self, e: &Expr) -> u64 {
        match e.range(self.params, self.iv).1 {
            Some(v) => v.clamp(0, u64::MAX as i128) as u64,
            None => u64::MAX,
        }
    }

    /// `min(a, b)` with an exactness flag; on incomparable bounds the
    /// second operand wins and the result is marked inexact.
    fn min_of(&self, a: &Expr, b: &Expr) -> (Expr, bool) {
        match self.le(a, b) {
            Some(true) => (a.clone(), true),
            Some(false) => (b.clone(), true),
            None => (b.clone(), false),
        }
    }
}

// ---------------------------------------------------------------------
// Section-partitioned buffer state
// ---------------------------------------------------------------------

/// Per-buffer abstract state: a partition of `[0, extent)` (element
/// units, symbolic) into segments of equal [`Abs`] state. Segment
/// boundaries are affine expressions; splitting requires the relevant
/// three-valued comparisons to decide, and falls back to a single
/// joined segment (with the operation applied as `May`) when they do
/// not.
#[derive(Debug, Clone, PartialEq)]
struct BufState {
    extent: Expr,
    segs: Vec<(Expr, Expr, Abs)>,
}

impl BufState {
    fn new(extent: Expr, init: Abs) -> BufState {
        let segs = if extent.as_const() == Some(0) {
            Vec::new()
        } else {
            vec![(Expr::ZERO, extent.clone(), init)]
        };
        BufState { extent, segs }
    }

    fn join_all(&self) -> Abs {
        let mut it = self.segs.iter();
        let first = match it.next() {
            Some(s) => s.2,
            None => Abs::BOTTOM,
        };
        it.fold(first, |a, s| a.join(s.2))
    }

    /// Collapse to a single segment holding the join of every segment.
    fn collapse(&mut self) {
        let a = self.join_all();
        *self = BufState::new(self.extent.clone(), a);
    }

    /// The partition with every bound constant, if fully concrete.
    fn const_segs(&self) -> Option<Vec<(u64, u64, Abs)>> {
        self.segs
            .iter()
            .map(|(lo, hi, s)| match (lo.as_const(), hi.as_const()) {
                (Some(l), Some(h)) if l >= 0 && h >= l => Some((l as u64, h as u64, *s)),
                _ => None,
            })
            .collect()
    }

    /// Join with `other`. Identical partitions join pointwise; fully
    /// concrete partitions are refined on the union of their cut
    /// points; anything else collapses both sides first (sound).
    fn join(&mut self, other: &BufState, _cx: &Cx) {
        let same = self.segs.len() == other.segs.len()
            && self.segs.iter().zip(&other.segs).all(|(a, b)| a.0 == b.0 && a.1 == b.1);
        if same {
            for (a, b) in self.segs.iter_mut().zip(&other.segs) {
                a.2 = a.2.join(b.2);
            }
            self.merge();
            return;
        }
        if let (Some(a), Some(b)) = (self.const_segs(), other.const_segs()) {
            let mut cuts: Vec<u64> = Vec::new();
            for &(lo, hi, _) in a.iter().chain(b.iter()) {
                cuts.push(lo);
                cuts.push(hi);
            }
            cuts.sort_unstable();
            cuts.dedup();
            let at = |segs: &[(u64, u64, Abs)], x: u64| {
                segs.iter().find(|&&(lo, hi, _)| lo <= x && x < hi).map(|s| s.2)
            };
            let mut segs = Vec::new();
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let s = match (at(&a, lo), at(&b, lo)) {
                    (Some(x), Some(y)) => x.join(y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => continue,
                };
                segs.push((Expr::lit(lo), Expr::lit(hi), s));
            }
            self.segs = segs;
            self.merge();
            return;
        }
        let mut o = other.clone();
        o.collapse();
        self.collapse();
        if let (Some(a), Some(b)) = (self.segs.first_mut(), o.segs.first()) {
            a.2 = a.2.join(b.2);
        }
    }

    /// Split the partition at `x`. Returns `false` when the position of
    /// `x` relative to some boundary cannot be decided.
    fn split_at(&mut self, x: &Expr, cx: &Cx) -> bool {
        for i in 0..self.segs.len() {
            let (lo, hi) = (self.segs[i].0.clone(), self.segs[i].1.clone());
            if cx.le(x, &lo) == Some(true) {
                return true; // at or before an existing boundary
            }
            if cx.le(&hi, x) == Some(true) {
                continue; // beyond this segment
            }
            if cx.lt(&lo, x) == Some(true) && cx.lt(x, &hi) == Some(true) {
                let s = self.segs[i].2;
                self.segs[i].1 = x.clone();
                self.segs.insert(i + 1, (x.clone(), hi, s));
                return true;
            }
            return false;
        }
        true // at or past the extent: nothing to split
    }

    /// Apply `f` to every segment of `[lo, hi)`. `exact` applies `f`
    /// directly; otherwise (data-dependent path or imprecise bounds)
    /// the result joins with the unchanged state. Incomparable bounds
    /// collapse the partition and apply `f` as `May` over the whole
    /// extent — sound for both the affected and unaffected region.
    fn apply_range(&mut self, lo: &Expr, hi: &Expr, exact: bool, cx: &Cx, f: impl Fn(Abs) -> Abs) {
        if cx.le(hi, lo) == Some(true) || cx.le(&self.extent, lo) == Some(true) {
            return; // provably empty
        }
        if !self.split_at(lo, cx) || !self.split_at(hi, cx) {
            self.fallback(&f);
            return;
        }
        let mut inside = Vec::new();
        for (i, seg) in self.segs.iter().enumerate() {
            match (cx.le(lo, &seg.0), cx.le(&seg.1, hi)) {
                (Some(true), Some(true)) => inside.push(i),
                (Some(false), _) | (_, Some(false)) => {}
                _ => {
                    self.fallback(&f);
                    return;
                }
            }
        }
        for i in inside {
            let s = self.segs[i].2;
            self.segs[i].2 = if exact { f(s) } else { s.join(f(s)) };
        }
        self.merge();
    }

    /// Sound fallback: one joined segment, `f` applied as `May`.
    fn fallback(&mut self, f: &impl Fn(Abs) -> Abs) {
        let a = self.join_all();
        *self = BufState::new(self.extent.clone(), a.join(f(a)));
    }

    /// The segments of `[lo, hi)` with numeric bound projections, plus
    /// an exactness flag (`false` when the overlapping segments could
    /// not be identified and the whole joined state is returned).
    fn view(&self, lo: &Expr, hi: &Expr, cx: &Cx) -> (Vec<(u64, u64, Abs)>, bool) {
        if cx.le(hi, lo) == Some(true) || cx.le(&self.extent, lo) == Some(true) {
            return (Vec::new(), true);
        }
        let blur =
            |s: &BufState| (vec![(cx.proj_lo(lo), cx.proj_hi(hi), s.join_all())], false);
        let mut probe = self.clone();
        if !probe.split_at(lo, cx) || !probe.split_at(hi, cx) {
            return blur(self);
        }
        let mut out = Vec::new();
        for seg in &probe.segs {
            match (cx.le(lo, &seg.0), cx.le(&seg.1, hi)) {
                (Some(true), Some(true)) => {
                    out.push((cx.proj_lo(&seg.0), cx.proj_hi(&seg.1), seg.2));
                }
                (Some(false), _) | (_, Some(false)) => {}
                _ => return blur(self),
            }
        }
        (out, true)
    }

    fn merge(&mut self) {
        self.segs.dedup_by(|next, prev| {
            if prev.1 == next.0 && prev.2 == next.2 {
                prev.1 = next.1.clone();
                true
            } else {
                false
            }
        });
    }
}

// ---------------------------------------------------------------------
// Abstract mapping structure (Table I)
// ---------------------------------------------------------------------

/// A present-table entry: the mapped element interval as written in the
/// creating map clause (possibly exceeding the declared extent — that
/// is the BO bug class) plus the reference count. Joins at merge points
/// may make the section, the refcount, or the presence itself
/// uncertain; the flags keep later transfers sound (`May`) instead of
/// definite.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    lo: Expr,
    hi: Expr,
    /// The section bounds hold on every path reaching here.
    sect_exact: bool,
    /// Reference count, saturating at [`Entry::RC_CAP`]. When
    /// `rc_exact` is false this is a *lower bound* on the true count
    /// (joins take the minimum, saturation only loses increments), so
    /// `rc > 0` after a decrement still certainly suppresses the exit
    /// transfer.
    rc: u8,
    rc_exact: bool,
    /// The entry is present on every path reaching here.
    sure: bool,
}

impl Entry {
    const RC_CAP: u8 = 8;
}

fn join_entry(a: &Entry, b: &Entry, extent: &Expr) -> Entry {
    let (lo, hi, sect_exact) = if a.lo == b.lo && a.hi == b.hi {
        (a.lo.clone(), a.hi.clone(), a.sect_exact && b.sect_exact)
    } else {
        (Expr::ZERO, extent.clone(), false)
    };
    let (rc, rc_exact) =
        if a.rc == b.rc { (a.rc, a.rc_exact && b.rc_exact) } else { (a.rc.min(b.rc), false) };
    Entry { lo, hi, sect_exact, rc, rc_exact, sure: a.sure && b.sure }
}

/// One effect of a construct, for the nowait conflict pass. Bounds are
/// conservative numeric projections of the symbolic section.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EffectRange {
    buf: BufId,
    lo: u64,
    hi: u64,
    is_write: bool,
}

/// A submitted-but-unjoined `nowait` target.
#[derive(Debug, Clone, PartialEq)]
struct Pending {
    seq: u64,
    id: TargetId,
    depends: Vec<DependClause>,
    effects: Vec<EffectRange>,
}

/// The joinable abstract state: buffer partitions, present table, and
/// pending nowait tasks. Diagnostics accumulate outside of it.
#[derive(Debug, Clone, PartialEq)]
struct State {
    bufs: Vec<BufState>,
    present: BTreeMap<(u16, u32), Entry>,
    pending: Vec<Pending>,
}

// ---------------------------------------------------------------------
// The abstract interpreter
// ---------------------------------------------------------------------

/// Bound on widening rounds per loop. The domain is finite (masks,
/// saturating refcounts, monotone flags, a bounded cut set), so the
/// fixpoint terminates well inside this; the bound plus the terminal
/// top-forcing below is a belt-and-braces guarantee.
const LOOP_FIXPOINT_BOUND: usize = 64;

struct Analyzer<'a> {
    p: &'a Program,
    st: State,
    next_seq: u64,
    /// Innermost-first stack of loop iv ranges `[0, trip)`.
    iv: Vec<(u64, Option<u64>)>,
    /// Non-zero while exploring a path that may not execute (an `If`
    /// arm, or a possibly-zero-trip loop body): demotes diagnostics.
    may_ctx: u32,
    /// Non-zero during silent fixpoint rounds: suppresses diagnostics.
    silent: u32,
    diags: Vec<Diagnostic>,
    seen: BTreeSet<(&'static str, String, u64, u64, Severity)>,
}

impl<'a> Analyzer<'a> {
    fn new(p: &'a Program) -> Analyzer<'a> {
        let cx = Cx { params: &p.params, iv: None };
        let bufs = p
            .buffers
            .iter()
            .map(|d| {
                let extent = d.extent();
                let mut st = BufState::new(extent.clone(), Abs::BOTTOM);
                if let Some((c, sect)) = &d.host_init {
                    let (lo, hi) = sect.resolve_sym(&extent);
                    let (hi, hx) = cx.min_of(&hi, &extent);
                    let exact = hx && *c == Certainty::Must;
                    st.apply_range(&lo, &hi, exact, &cx, |a| {
                        a.step(VsmOp::Write(StorageLoc::Host), *c)
                    });
                }
                st
            })
            .collect();
        Analyzer {
            p,
            st: State { bufs, present: BTreeMap::new(), pending: Vec::new() },
            next_seq: 0,
            iv: Vec::new(),
            may_ctx: 0,
            silent: 0,
            diags: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        self.diags.sort_by(|a, b| {
            (a.severity, &a.buffer, a.section, a.kind.label())
                .cmp(&(b.severity, &b.buffer, b.section, b.kind.label()))
        });
        self.diags
    }

    fn cx(&self) -> Cx<'a> {
        Cx { params: &self.p.params, iv: self.iv.last().copied() }
    }

    fn name(&self, b: BufId) -> &str {
        &self.p.decl(b).name
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        severity: Severity,
        kind: ReportKind,
        buf: BufId,
        device: DeviceId,
        section: (u64, u64),
        message: String,
        suggested_fix: String,
    ) {
        if self.silent > 0 {
            return;
        }
        let severity = if self.may_ctx > 0 { Severity::May } else { severity };
        let key = (kind.label(), self.name(buf).to_string(), section.0, section.1, severity);
        if self.seen.insert(key) {
            self.diags.push(Diagnostic {
                severity,
                kind,
                buffer: self.name(buf).to_string(),
                device,
                section,
                message,
                suggested_fix,
            });
        }
    }

    // ---- state joining ----

    fn join_state(&self, into: &mut State, other: &State) {
        let cx = self.cx();
        for (a, b) in into.bufs.iter_mut().zip(&other.bufs) {
            a.join(b, &cx);
        }
        let mut present = BTreeMap::new();
        for (k, ea) in &into.present {
            match other.present.get(k) {
                Some(eb) => {
                    let extent = self.p.decl(BufId(k.1)).extent();
                    present.insert(*k, join_entry(ea, eb, &extent));
                }
                None => {
                    let mut e = ea.clone();
                    e.sure = false;
                    e.rc_exact = false;
                    present.insert(*k, e);
                }
            }
        }
        for (k, eb) in &other.present {
            if !into.present.contains_key(k) {
                let mut e = eb.clone();
                e.sure = false;
                e.rc_exact = false;
                present.insert(*k, e);
            }
        }
        into.present = present;
        for t in &other.pending {
            if !into.pending.iter().any(|x| x.seq == t.seq) {
                into.pending.push(t.clone());
            }
        }
        into.pending.sort_by_key(|t| t.seq);
    }

    // ---- node dispatch ----

    fn exec_nodes(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Target(t) => self.exec_target(t),
                Node::TargetData { device, maps, body } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_entry(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                    self.exec_nodes(body);
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_exit(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::EnterData { device, maps } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_entry(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::ExitData { device, maps } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_exit(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::Update { device, to_device, buf } => {
                    let mut effects = Vec::new();
                    self.update(*device, *to_device, *buf, &mut effects);
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::Host(a) => {
                    let effects = vec![self.effect_of(a)];
                    self.race_check(&effects, &BTreeSet::new());
                    self.host_access(a);
                }
                Node::Taskwait => self.st.pending.clear(),
                Node::Wait { target } => {
                    // Completion of a task implies completion of its
                    // transitive depend-predecessors.
                    if let Some(i) = self.st.pending.iter().position(|t| t.id == *target) {
                        let preds =
                            self.preds_of(&self.st.pending[i].depends, self.st.pending[i].seq);
                        self.st.pending.retain(|t| t.id != *target && !preds.contains(&t.seq));
                    }
                }
                Node::If { then_, else_, .. } => {
                    let snap = self.st.clone();
                    self.may_ctx += 1;
                    self.exec_nodes(then_);
                    let then_out = std::mem::replace(&mut self.st, snap);
                    self.exec_nodes(else_);
                    self.may_ctx -= 1;
                    let mut merged = std::mem::replace(
                        &mut self.st,
                        State { bufs: Vec::new(), present: BTreeMap::new(), pending: Vec::new() },
                    );
                    self.join_state(&mut merged, &then_out);
                    self.st = merged;
                }
                Node::Loop { trip, body } => self.exec_loop(trip, body),
            }
        }
    }

    /// Widen a loop body to a fixpoint invariant, then run one emitting
    /// pass from the invariant. See the module docs for the rule.
    fn exec_loop(&mut self, trip: &Trip, body: &[Node]) {
        let cx = self.cx();
        let (tlo, thi) = trip.0.range(cx.params, cx.iv);
        let tmin = tlo.map(|v| v.clamp(0, u64::MAX as i128) as u64).unwrap_or(0);
        let tmax = thi.map(|v| v.clamp(0, u64::MAX as i128) as u64);
        if tmax == Some(0) {
            return; // the body never executes
        }
        let iv_range = (0, tmax.map(|t| t.saturating_sub(1)));
        let entry_seq = self.next_seq;
        let mut inv = self.st.clone();
        let mut converged = false;
        self.silent += 1;
        for round in 0..LOOP_FIXPOINT_BOUND {
            self.st = inv.clone();
            self.next_seq = entry_seq;
            self.iv.push(iv_range);
            self.exec_nodes(body);
            self.iv.pop();
            let mut next = inv.clone();
            let body_out = std::mem::replace(
                &mut self.st,
                State { bufs: Vec::new(), present: BTreeMap::new(), pending: Vec::new() },
            );
            self.join_state(&mut next, &body_out);
            if next == inv {
                converged = true;
                break;
            }
            inv = next;
            if round + 1 == LOOP_FIXPOINT_BOUND / 2 {
                // Halfway without converging: collapse buffer
                // partitions to accelerate (monotone, hence sound).
                for bs in &mut inv.bufs {
                    bs.collapse();
                }
            }
        }
        if !converged {
            // Terminal widening: no must-facts survive, every may-fact
            // holds, the present table is fully uncertain. This is an
            // absorbing post-fixpoint of every transfer.
            for bs in &mut inv.bufs {
                *bs = BufState::new(bs.extent.clone(), Abs::TOP);
            }
            let keys: Vec<(u16, u32)> = inv.present.keys().copied().collect();
            for k in keys {
                let extent = self.p.decl(BufId(k.1)).extent();
                inv.present.insert(
                    k,
                    Entry {
                        lo: Expr::ZERO,
                        hi: extent,
                        sect_exact: false,
                        rc: 0,
                        rc_exact: false,
                        sure: false,
                    },
                );
            }
        }
        self.silent -= 1;
        // Emitting pass from the invariant.
        self.st = inv.clone();
        self.next_seq = entry_seq;
        let zero_possible = tmin == 0;
        if zero_possible {
            self.may_ctx += 1;
        }
        self.iv.push(iv_range);
        self.exec_nodes(body);
        self.iv.pop();
        if zero_possible {
            self.may_ctx -= 1;
            // The loop may not run at all: the post-state is the
            // invariant, which subsumes the entry state.
            self.st = inv;
        }
        // With trip >= 1 the post-state is body(invariant): a Must fact
        // surviving one abstract iteration stays Must.
    }

    /// Conservative numeric effect of an access, for the race pass.
    fn effect_of(&self, a: &Access) -> EffectRange {
        let cx = self.cx();
        let extent = self.p.decl(a.buf).extent();
        let (lo, hi) = a.sect.resolve_sym(&extent);
        let (lo, _) = cx.min_of(&lo, &extent);
        let (hi, _) = cx.min_of(&hi, &extent);
        EffectRange { buf: a.buf, lo: cx.proj_lo(&lo), hi: cx.proj_hi(&hi), is_write: a.is_write }
    }

    fn exec_target(&mut self, t: &TargetNode) {
        if t.device.is_host() {
            // A host-device target runs on the OV directly.
            for a in &t.body {
                self.host_access(a);
            }
            return;
        }
        let ordered = self.preds_of(&t.depends, u64::MAX);
        let mut effects = Vec::new();
        for m in &t.maps {
            self.map_entry(t.device, m, &mut effects);
        }
        for a in &t.body {
            effects.push(self.effect_of(a));
            self.device_access(t.device, a);
        }
        for m in &t.maps {
            self.map_exit(t.device, m, &mut effects);
        }
        self.race_check(&effects, &ordered);
        if t.nowait {
            let seq = self.next_seq;
            self.next_seq += 1;
            // Re-submission of the same abstract task (a later fixpoint
            // round) replaces the previous copy instead of duplicating.
            self.st.pending.retain(|p| p.seq != seq);
            self.st.pending.push(Pending { seq, id: t.id, depends: t.depends.clone(), effects });
            self.st.pending.sort_by_key(|p| p.seq);
        } else {
            // A synchronous dependent target joins its predecessors.
            self.st.pending.retain(|p| !ordered.contains(&p.seq));
        }
    }

    // ---- the depend/nowait task graph ----

    /// The pending tasks ordered before a construct carrying `depends`,
    /// transitively closed with a worklist over depend-clause
    /// conflicts. `before` bounds the sequence numbers considered.
    fn preds_of(&self, depends: &[DependClause], before: u64) -> BTreeSet<u64> {
        fn conflicts(a: &[DependClause], b: &[DependClause]) -> bool {
            a.iter().any(|x| b.iter().any(|y| x.buf == y.buf && (x.is_write || y.is_write)))
        }
        let mut ordered: BTreeSet<u64> = BTreeSet::new();
        let mut work: Vec<(u64, Vec<DependClause>)> = vec![(before, depends.to_vec())];
        while let Some((limit, deps)) = work.pop() {
            for p in &self.st.pending {
                if p.seq < limit && !ordered.contains(&p.seq) && conflicts(&p.depends, &deps) {
                    ordered.insert(p.seq);
                    work.push((p.seq, p.depends.clone()));
                }
            }
        }
        ordered
    }

    /// Flag overlap between a construct's effects and every pending
    /// task not ordered before it: a data-dependent race.
    fn race_check(&mut self, effects: &[EffectRange], ordered: &BTreeSet<u64>) {
        let mut found: Vec<(BufId, u64, u64)> = Vec::new();
        for p in &self.st.pending {
            if ordered.contains(&p.seq) {
                continue;
            }
            for e in effects {
                for pe in &p.effects {
                    if e.buf == pe.buf
                        && (e.is_write || pe.is_write)
                        && sections::overlaps(e.lo, e.hi, pe.lo, pe.hi)
                    {
                        found.push((e.buf, e.lo.max(pe.lo), e.hi.min(pe.hi)));
                    }
                }
            }
        }
        for (buf, lo, hi) in found {
            let msg = format!(
                "unordered accesses to '{}'[{lo}..{hi}] overlap with a pending nowait target",
                self.name(buf)
            );
            self.emit(
                Severity::May,
                ReportKind::DataRace,
                buf,
                DeviceId::ACCEL0,
                (lo, hi),
                msg,
                hints::ORDER_ACCESSES.to_string(),
            );
        }
    }

    // ---- Table I mapping semantics ----

    fn map_entry(&mut self, device: DeviceId, m: &MapClause, effects: &mut Vec<EffectRange>) {
        if matches!(m.map_type, MapType::Release | MapType::Delete) {
            return; // no entry-side effect
        }
        let cx = self.cx();
        let key = (device.0, m.buf.0);
        let decl = self.p.decl(m.buf);
        let extent = decl.extent();
        let (lo, hi) = m.sect.resolve_sym(&extent);
        let mut creation_sure = true;
        match self.st.present.get_mut(&key) {
            Some(e) if e.sure => {
                // Table I: an existing entry only gains a reference.
                e.rc = e.rc.saturating_add(1);
                if e.rc >= Entry::RC_CAP {
                    e.rc = Entry::RC_CAP;
                    e.rc_exact = false;
                }
                return;
            }
            Some(e) => {
                // May-present: the clause either increments an existing
                // entry or creates one. Afterwards presence is certain;
                // the count is a lower bound and the section joins.
                if e.lo != lo || e.hi != hi {
                    e.lo = Expr::ZERO;
                    e.hi = extent.clone();
                    e.sect_exact = false;
                }
                e.rc = 1;
                e.rc_exact = false;
                e.sure = true;
                creation_sure = false;
            }
            None => {
                self.st.present.insert(
                    key,
                    Entry {
                        lo: lo.clone(),
                        hi: hi.clone(),
                        sect_exact: true,
                        rc: 1,
                        rc_exact: true,
                        sure: true,
                    },
                );
            }
        }
        let (clo, lx) = cx.min_of(&lo, &extent);
        let (chi, hx) = cx.min_of(&hi, &extent);
        let exact = lx && hx && creation_sure;
        let dev = device.0 as u8;
        self.st.bufs[m.buf.0 as usize]
            .apply_range(&clo, &chi, exact, &cx, |a| a.step_must(VsmOp::Allocate(dev)));
        if m.map_type.copies_to_device() {
            let overflow = cx.lt(&extent, &hi);
            if overflow != Some(false) {
                let (plo, phi) = (cx.proj_lo(&lo), cx.proj_hi(&hi));
                let msg = format!(
                    "entry transfer of '{}'[{plo}..{phi}] exceeds the variable's extent ({} elements)",
                    decl.name,
                    cx.proj_lo(&extent)
                );
                let sev = if overflow == Some(true) { Severity::Must } else { Severity::May };
                let fix = hints::shrink_section(&decl.name);
                self.emit(sev, ReportKind::MappingOverflow, m.buf, device, (plo, phi), msg, fix);
            }
            self.st.bufs[m.buf.0 as usize]
                .apply_range(&clo, &chi, exact, &cx, |a| a.step_must(VsmOp::UpdateToDevice(dev)));
            effects.push(EffectRange {
                buf: m.buf,
                lo: cx.proj_lo(&clo),
                hi: cx.proj_hi(&chi),
                is_write: true,
            });
        }
    }

    fn map_exit(&mut self, device: DeviceId, m: &MapClause, effects: &mut Vec<EffectRange>) {
        let key = (device.0, m.buf.0);
        let Some(e) = self.st.present.get_mut(&key) else {
            return; // exit over an absent entry is a no-op
        };
        e.rc = if m.map_type == MapType::Delete { 0 } else { e.rc.saturating_sub(1) };
        if e.rc > 0 {
            // An inexact count is a lower bound on the true count, so a
            // positive remainder suppresses the transfer on every path.
            return;
        }
        let final_exit = e.rc_exact && e.sure;
        let entry = if final_exit {
            self.st.present.remove(&key).expect("entry just found")
        } else {
            // The exit may or may not be the final one; the entry stays
            // only may-present and the transfer applies as May.
            e.sure = false;
            e.rc_exact = false;
            e.clone()
        };
        let cx = self.cx();
        let decl = self.p.decl(m.buf);
        let extent = decl.extent();
        let (clo, lx) = cx.min_of(&entry.lo, &extent);
        let (chi, hx) = cx.min_of(&entry.hi, &extent);
        let exact = final_exit && entry.sect_exact && lx && hx;
        let dev = device.0 as u8;
        if m.map_type.copies_from_device() {
            // The exit transfer moves the *entry's* recorded section.
            let overflow = cx.lt(&extent, &entry.hi);
            if overflow != Some(false) && entry.sect_exact {
                let (plo, phi) = (cx.proj_lo(&entry.lo), cx.proj_hi(&entry.hi));
                let msg = format!(
                    "exit transfer of '{}'[{plo}..{phi}] exceeds the variable's extent ({} elements)",
                    decl.name,
                    cx.proj_lo(&extent)
                );
                let sev = if overflow == Some(true) && final_exit {
                    Severity::Must
                } else {
                    Severity::May
                };
                let fix = hints::shrink_section(&decl.name);
                self.emit(sev, ReportKind::MappingOverflow, m.buf, device, (plo, phi), msg, fix);
            }
            self.st.bufs[m.buf.0 as usize]
                .apply_range(&clo, &chi, exact, &cx, |a| a.step_must(VsmOp::UpdateFromDevice(dev)));
            effects.push(EffectRange {
                buf: m.buf,
                lo: cx.proj_lo(&clo),
                hi: cx.proj_hi(&chi),
                is_write: true,
            });
        }
        self.st.bufs[m.buf.0 as usize]
            .apply_range(&clo, &chi, exact, &cx, |a| a.step_must(VsmOp::Release(dev)));
    }

    fn update(
        &mut self,
        device: DeviceId,
        to_device: bool,
        buf: BufId,
        effects: &mut Vec<EffectRange>,
    ) {
        let key = (device.0, buf.0);
        let Some(entry) = self.st.present.get(&key).cloned() else {
            return; // update of an unmapped variable is a no-op
        };
        let cx = self.cx();
        let decl = self.p.decl(buf);
        let extent = decl.extent();
        let overflow = cx.lt(&extent, &entry.hi);
        if overflow != Some(false) && entry.sect_exact {
            let (plo, phi) = (cx.proj_lo(&entry.lo), cx.proj_hi(&entry.hi));
            let msg = format!(
                "update transfer of '{}'[{plo}..{phi}] exceeds the variable's extent ({} elements)",
                decl.name,
                cx.proj_lo(&extent)
            );
            let sev =
                if overflow == Some(true) && entry.sure { Severity::Must } else { Severity::May };
            let fix = hints::shrink_section(&decl.name);
            self.emit(sev, ReportKind::MappingOverflow, buf, device, (plo, phi), msg, fix);
        }
        let (clo, lx) = cx.min_of(&entry.lo, &extent);
        let (chi, hx) = cx.min_of(&entry.hi, &extent);
        let exact = entry.sure && entry.sect_exact && lx && hx;
        let dev = device.0 as u8;
        let op = if to_device { VsmOp::UpdateToDevice(dev) } else { VsmOp::UpdateFromDevice(dev) };
        self.st.bufs[buf.0 as usize].apply_range(&clo, &chi, exact, &cx, |a| a.step_must(op));
        effects.push(EffectRange {
            buf,
            lo: cx.proj_lo(&clo),
            hi: cx.proj_hi(&chi),
            is_write: true,
        });
    }

    // ---- accesses ----

    fn host_access(&mut self, a: &Access) {
        let cx = self.cx();
        let extent = self.p.decl(a.buf).extent();
        let (lo, hi) = a.sect.resolve_sym(&extent);
        let (lo, lx) = cx.min_of(&lo, &extent);
        let (hi, hx) = cx.min_of(&hi, &extent);
        self.vsm_access(a, DeviceId::HOST, StorageLoc::Host, &lo, &hi, lx && hx);
    }

    fn device_access(&mut self, device: DeviceId, a: &Access) {
        let cx = self.cx();
        let decl = self.p.decl(a.buf);
        let extent = decl.extent();
        let (rlo, rhi) = a.sect.resolve_sym(&extent);
        let (lo, lx) = cx.min_of(&rlo, &extent);
        let (hi, hx) = cx.min_of(&rhi, &extent);
        let sect_exact = lx && hx;
        let Some(entry) = self.st.present.get(&(device.0, a.buf.0)).cloned() else {
            let (plo, phi) = (cx.proj_lo(&lo), cx.proj_hi(&hi));
            let msg = format!(
                "kernel {} '{}'[{plo}..{phi}] on {device} with no mapping present",
                if a.is_write { "writes" } else { "reads" },
                decl.name
            );
            self.emit(
                Severity::of(a.certainty),
                ReportKind::MappingOverflow,
                a.buf,
                device,
                (plo, phi),
                msg,
                hints::ADD_MAP.to_string(),
            );
            return;
        };
        if !entry.sure {
            // The mapping may be absent on some path.
            let (plo, phi) = (cx.proj_lo(&lo), cx.proj_hi(&hi));
            let msg = format!(
                "kernel {} '{}'[{plo}..{phi}] on {device} with no mapping present",
                if a.is_write { "writes" } else { "reads" },
                decl.name
            );
            self.emit(
                Severity::May,
                ReportKind::MappingOverflow,
                a.buf,
                device,
                (plo, phi),
                msg,
                hints::ADD_MAP.to_string(),
            );
        }
        let (ehi, ex) = cx.min_of(&entry.hi, &extent);
        let below = cx.lt(&lo, &entry.lo);
        let above = cx.lt(&ehi, &hi);
        let outside = match (below, above) {
            (Some(false), Some(false)) => Some(false),
            (Some(true), _) | (_, Some(true)) => Some(true),
            _ => None,
        };
        if outside != Some(false) && entry.sect_exact {
            let definite = outside == Some(true) && entry.sure && sect_exact;
            let (plo, phi) = (cx.proj_lo(&lo), cx.proj_hi(&hi));
            let msg = format!(
                "kernel access to '{}'[{plo}..{phi}] lies outside the mapped section [{}..{}]",
                decl.name,
                cx.proj_lo(&entry.lo),
                cx.proj_hi(&ehi)
            );
            let sev = if definite { Severity::of(a.certainty) } else { Severity::May };
            self.emit(
                sev,
                ReportKind::MappingOverflow,
                a.buf,
                device,
                (plo, phi),
                msg,
                hints::CHECK_BOUNDS.to_string(),
            );
        }
        // Clamp the modelled access to the mapped section.
        let (alo, ax) = match cx.le(&entry.lo, &lo) {
            Some(true) => (lo.clone(), true),
            Some(false) => (entry.lo.clone(), true),
            None => (entry.lo.clone(), false),
        };
        let (ahi, bx) = cx.min_of(&hi, &ehi);
        let exact = sect_exact && entry.sect_exact && entry.sure && ex && ax && bx;
        self.vsm_access(a, device, StorageLoc::Device(device.0 as u8), &alo, &ahi, exact);
    }

    fn vsm_access(
        &mut self,
        a: &Access,
        device: DeviceId,
        loc: StorageLoc,
        lo: &Expr,
        hi: &Expr,
        exact: bool,
    ) {
        let cx = self.cx();
        if cx.le(hi, lo) == Some(true) {
            return;
        }
        if a.is_write {
            self.st.bufs[a.buf.0 as usize]
                .apply_range(lo, hi, exact, &cx, |s| s.step(VsmOp::Write(loc), a.certainty));
            return;
        }
        // Reads never mutate abstract state; check each distinct segment.
        let (view, vexact) = self.st.bufs[a.buf.0 as usize].view(lo, hi, &cx);
        let mut faults: Vec<(u64, u64, Severity, ViolationKind)> = Vec::new();
        for (slo, shi, abs) in view {
            if let Some((sev, kind)) = abs.check_read(loc.bit(), a.certainty) {
                let sev = if exact && vexact { sev } else { Severity::May };
                faults.push((slo, shi, sev, kind));
            }
        }
        for (slo, shi, sev, kind) in faults {
            let (kind, what) = match kind {
                ViolationKind::Uum => (ReportKind::MappingUum, "uninitialised memory"),
                ViolationKind::Usd => (ReportKind::MappingUsd, "stale data"),
            };
            let verb = match sev {
                Severity::Must => "reads",
                Severity::May => "may read",
            };
            let msg = format!("'{}'[{slo}..{shi}] {verb} {what} on {device}", self.name(a.buf));
            let fix = hints::for_read(kind, device).to_string();
            self.emit(sev, kind, a.buf, device, (slo, shi), msg, fix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_ir::{Binding, ProgramBuilder, Sect};

    fn kinds(diags: &[Diagnostic]) -> Vec<(Severity, ReportKind)> {
        diags.iter().map(|d| (d.severity, d.kind)).collect()
    }

    #[test]
    fn clean_to_from_program_has_no_findings() {
        let mut p = ProgramBuilder::new("clean");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        p.host_read(out);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn alloc_instead_of_to_is_a_must_uum() {
        let mut p = ProgramBuilder::new("uum");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_alloc(a).reads(a).done();
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUum)]);
        assert_eq!(d[0].suggested_fix, hints::UUM_DEVICE);
    }

    #[test]
    fn missing_copy_back_is_a_must_usd_on_the_host() {
        let mut p = ProgramBuilder::new("usd");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to(a).reads(a).writes(a).done();
        p.host_read_sec(a, 0, 1);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUsd)]);
        assert_eq!(d[0].suggested_fix, hints::USD_HOST);
        assert_eq!(d[0].device, DeviceId::HOST);
    }

    #[test]
    fn oversized_section_is_a_must_overflow_with_the_shrink_hint() {
        let mut p = ProgramBuilder::new("bo");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to_sec(a, 0, 24).reads(a).done();
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingOverflow)]);
        assert_eq!(d[0].suggested_fix, hints::shrink_section("a"));
    }

    #[test]
    fn oversized_alloc_flags_at_the_exit_transfer() {
        // From-map: no entry transfer, so the overflow surfaces when the
        // exit transfer moves the entry's oversized section.
        let mut p = ProgramBuilder::new("bo-exit");
        let a = p.buffer("a", 8, 16);
        p.target().map_from_sec(a, 0, 24).writes(a).done();
        p.host_read_sec(a, 0, 1);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingOverflow)]);
    }

    #[test]
    fn data_dependent_host_write_downgrades_to_may() {
        let mut p = ProgramBuilder::new("may-usd");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.data().map_to(a).map_from(out).scope(|p| {
            p.host_may_write(a);
            p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        });
        p.host_read(out);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::MappingUsd)]);
    }

    #[test]
    fn may_initialised_buffer_downgrades_to_may_uum() {
        let mut p = ProgramBuilder::new("may-uum");
        let mut q = ProgramBuilder::new("must-uum");
        for (b, init_known) in [(&mut p, true), (&mut q, false)] {
            let a =
                if init_known { b.buffer_init_may("a", 8, 16) } else { b.buffer("a", 8, 16) };
            b.target().map_to(a).reads(a).done();
        }
        assert_eq!(kinds(&analyze(&p.build())), vec![(Severity::May, ReportKind::MappingUum)]);
        assert_eq!(kinds(&analyze(&q.build())), vec![(Severity::Must, ReportKind::MappingUum)]);
    }

    #[test]
    fn write_then_read_scratch_is_clean() {
        let mut p = ProgramBuilder::new("scratch");
        let s = p.buffer("s", 8, 16);
        p.target().map_alloc(s).writes(s).reads(s).done();
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn refcount_suppresses_the_inner_exit_transfer() {
        // Table I: the inner tofrom exit decrements to 1 and must NOT
        // copy back — the host read inside the region is a definite USD.
        let mut p = ProgramBuilder::new("rc");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_tofrom(a).reads(a).writes(a).done();
            p.host_read_sec(a, 7, 1);
        });
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUsd)]);
        assert_eq!(d[0].section, (7, 8));
    }

    #[test]
    fn remap_after_release_loses_the_device_copy() {
        let mut p = ProgramBuilder::new("epoch");
        let a = p.buffer_init("a", 8, 16);
        p.enter_data(vec![MapClause { buf: a, map_type: MapType::To, sect: Sect::Full }]);
        p.target().map_to(a).reads(a).writes(a).done();
        p.exit_data(vec![MapClause { buf: a, map_type: MapType::Release, sect: Sect::Full }]);
        p.enter_data(vec![MapClause { buf: a, map_type: MapType::Alloc, sect: Sect::Full }]);
        p.target().map_alloc(a).reads(a).done();
        p.exit_data(vec![MapClause { buf: a, map_type: MapType::Release, sect: Sect::Full }]);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUum)]);
    }

    #[test]
    fn unordered_nowait_overlap_is_a_may_race() {
        let mut p = ProgramBuilder::new("race");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_to(a).nowait().writes(a).done();
            p.target().map_to(a).nowait().writes(a).done();
            p.taskwait();
        });
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::DataRace)]);
    }

    #[test]
    fn depend_chain_orders_nowait_tasks() {
        let mut p = ProgramBuilder::new("chain");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            for _ in 0..3 {
                p.target().map_to(a).nowait().depend_write(a).reads(a).writes(a).done();
            }
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn disjoint_nowait_halves_do_not_race() {
        let mut p = ProgramBuilder::new("halves");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_to(a).nowait().writes_sec(a, 0, 8).done();
            p.target().map_to(a).nowait().writes_sec(a, 8, 8).done();
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn wait_joins_the_task_and_its_predecessors() {
        let mut p = ProgramBuilder::new("wait");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            let h = p.target().map_to(a).nowait().reads(a).writes(a).done();
            p.wait(h);
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn diagnostics_render_through_the_shared_report_shape() {
        let mut p = ProgramBuilder::new("render");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_alloc(a).reads(a).done();
        let d = analyze(&p.build());
        let r = d[0].to_report();
        let text = r.render();
        assert!(text.contains("ArbalestStatic"), "{text}");
        assert!(text.contains("mapping-issue(UUM)"), "{text}");
        assert!(text.contains("Suggested fix"), "{text}");
        assert!(r.message.starts_with("[must]"));
    }

    // ---- control flow ----

    #[test]
    fn branch_arm_that_skips_copy_back_demotes_to_may() {
        // One arm leaves the host copy stale, the other never runs the
        // kernel: the merge carries the stale fact only as May.
        let mut p = ProgramBuilder::new("branch");
        let a = p.buffer_init("a", 8, 16);
        p.if_(
            true,
            |p| {
                p.target().map_to(a).reads(a).writes(a).done();
            },
            |_| {},
        );
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::MappingUsd)]);
    }

    #[test]
    fn identical_branch_arms_keep_must_facts() {
        // Both arms leave the host copy stale, so the post-branch read
        // still faults on every execution.
        let mut p = ProgramBuilder::new("branch-same");
        let a = p.buffer_init("a", 8, 16);
        p.if_(
            true,
            |p| {
                p.target().map_to(a).reads(a).writes(a).done();
            },
            |p| {
                p.target().map_to(a).reads(a).writes(a).done();
            },
        );
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUsd)]);
    }

    #[test]
    fn loop_carried_must_survives_widening() {
        // The body maps, mutates and unmaps every iteration; the final
        // host read of the never-copied-back buffer stays Must. The
        // loop-carried staleness also surfaces: from iteration 2 on the
        // entry transfer re-ships the stale host copy, so the device
        // read is possibly stale (May — iteration 1 is clean).
        let mut p = ProgramBuilder::new("loop-usd");
        let a = p.buffer_init("a", 8, 16);
        p.loop_n(4, |p| {
            p.target().map_to(a).reads(a).writes(a).done();
        });
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(
            kinds(&d),
            vec![(Severity::Must, ReportKind::MappingUsd), (Severity::May, ReportKind::MappingUsd)]
        );
        assert_eq!(d[0].device, DeviceId::HOST);
    }

    #[test]
    fn zero_trip_loop_demotes_to_may() {
        // With n possibly 0 the device may never write, so the host
        // read is only possibly stale.
        let mut p = ProgramBuilder::new("loop-zero");
        let n = p.param("n", 0, Some(4));
        let a = p.buffer_init("a", 8, 16);
        p.loop_(Trip(Expr::param(n)), |p| {
            p.target().map_to(a).reads(a).writes(a).done();
        });
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::MappingUsd)]);
    }

    #[test]
    fn loop_fixpoint_converges_on_nowait_chains() {
        // A nowait target with a self-conflicting depend chain inside a
        // loop orders itself across iterations: no race.
        let mut p = ProgramBuilder::new("loop-chain");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.loop_n(5, |p| {
                p.target().map_to(a).nowait().depend_write(a).reads(a).writes(a).done();
            });
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn unordered_nowait_loop_races_itself() {
        let mut p = ProgramBuilder::new("loop-race");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.loop_n(3, |p| {
                p.target().map_to(a).nowait().writes(a).done();
            });
            p.taskwait();
        });
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::DataRace)]);
    }

    // ---- symbolic bounds ----

    #[test]
    fn symbolic_extent_program_analyzes_clean() {
        let mut p = ProgramBuilder::new("sym-clean");
        let n = p.param("n", 1, Some(64));
        let a = p.buffer_init_sym("a", 8, Expr::param(n));
        let out = p.buffer_sym("out", 8, Expr::param(n));
        p.loop_(Trip(Expr::param(n)), |p| {
            p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        });
        p.host_read(out);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn symbolic_overflow_is_flagged_by_interval_arithmetic() {
        // Section [0, n+4) over a buffer of extent n overflows for every
        // admissible n.
        let mut p = ProgramBuilder::new("sym-bo");
        let n = p.param("n", 1, Some(64));
        let a = p.buffer_init_sym("a", 8, Expr::param(n));
        p.target()
            .map_sym(a, MapType::To, Expr::ZERO, Expr::param(n).add_const(4))
            .reads(a)
            .done();
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingOverflow)]);
    }

    #[test]
    fn incomparable_bounds_fall_back_to_may() {
        // Section [0, m) over extent n: the parameter ranges overlap, so
        // the overflow cannot be decided — it must surface as May,
        // never Must.
        let mut p = ProgramBuilder::new("sym-may-bo");
        let n = p.param("n", 1, Some(64));
        let m = p.param("m", 1, Some(64));
        let a = p.buffer_init_sym("a", 8, Expr::param(n));
        p.target().map_sym(a, MapType::To, Expr::ZERO, Expr::param(m)).reads(a).done();
        let d = analyze(&p.build());
        assert!(!d.is_empty());
        assert!(d.iter().all(|x| x.severity == Severity::May), "{d:?}");
    }

    #[test]
    fn symbolic_analysis_agrees_with_instantiation() {
        // The symbolic verdict must over-approximate every admissible
        // concretization: each concrete finding appears symbolically
        // (same kind and buffer), and each symbolic Must is confirmed
        // as a concrete finding for every binding.
        let mut p = ProgramBuilder::new("sym-agree");
        let n = p.param("n", 1, Some(6));
        let a = p.buffer_init_sym("a", 8, Expr::param(n));
        p.loop_(Trip(Expr::param(n)), |p| {
            p.target().map_to(a).reads(a).writes(a).done();
        });
        p.host_read(a);
        let sym = p.build();
        let sd = analyze(&sym);
        assert!(
            sd.iter().any(|d| d.severity == Severity::Must && d.kind == ReportKind::MappingUsd)
        );
        for v in 1..=6u64 {
            let conc = sym.concretize(&Binding::new().set(n, v)).expect("concretize");
            let cd = analyze(&conc);
            for c in &cd {
                assert!(
                    sd.iter().any(|s| s.kind == c.kind && s.buffer == c.buffer),
                    "n={v}: concrete {c:?} missing symbolically"
                );
            }
            for s in sd.iter().filter(|s| s.severity == Severity::Must) {
                assert!(
                    cd.iter().any(|c| c.kind == s.kind && c.buffer == s.buffer),
                    "n={v}: symbolic Must {s:?} not confirmed concretely"
                );
            }
        }
    }
}
