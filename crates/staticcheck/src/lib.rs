//! # arbalest-static
//!
//! A static data-mapping analyzer: the §VI-G OMPSan-style companion to
//! the dynamic detector. It abstractly interprets an [`arbalest_ir`]
//! [`Program`] with the Fig-4 VSM **lifted to a may/must lattice** —
//! each buffer section tracks two `(valid_mask, init_mask)` pairs, one
//! for facts that hold on *every* execution (`must`) and one for facts
//! that hold on *some* execution (`may`). Because every VSM transition
//! is monotone in mask inclusion, lifting is exact: a definite
//! operation applies [`arbalest_core::vsm::apply`] componentwise, a
//! data-dependent one joins the result with the unchanged state.
//!
//! Faulting reads are classified by severity:
//!
//! * [`Severity::Must`] — the read's location is invalid in the *may*
//!   state, so every execution reaching it faults. The soundness
//!   contract (enforced by `tests/static_soundness.rs`) is that each
//!   such diagnostic is confirmed by the dynamic detector.
//! * [`Severity::May`] — data-dependent: invalid only in the *must*
//!   state, or on a data-dependent access. These are the cases §VI-G
//!   says a static tool cannot decide.
//!
//! Table I map-type/refcount semantics run over a concrete present
//! table (the benchmarks' mapping structure is deterministic), array
//! sections get interval arithmetic for the BO extension, and a
//! worklist pass over the `depend`/`nowait` task graph orders pending
//! device tasks — unordered overlapping effects surface as `May` data
//! races. Diagnostics carry the same `suggested_fix` vocabulary
//! ([`arbalest_offload::report::hints`]) as dynamic reports.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use arbalest_core::vsm::{self, StorageLoc, ViolationKind, VsmOp};
use arbalest_ir::{Access, BufId, Certainty, MapClause, Node, Program, TargetNode};
use arbalest_offload::addr::DeviceId;
use arbalest_offload::mapping::MapType;
use arbalest_offload::report::{hints, Report, ReportKind};
use arbalest_shadow::GranuleState;

/// How certain the analyzer is that a diagnostic fires at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Fires on every execution that reaches the construct.
    Must,
    /// Data-dependent; the dynamic detector has the last word.
    May,
}

impl Severity {
    /// Stable lowercase label (`must` / `may`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Must => "must",
            Severity::May => "may",
        }
    }

    fn of(c: Certainty) -> Severity {
        match c {
            Certainty::Must => Severity::Must,
            Certainty::May => Severity::May,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One static finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// `Must` (definite) vs `May` (data-dependent).
    pub severity: Severity,
    /// The violation class, shared with dynamic reports.
    pub kind: ReportKind,
    /// Affected buffer's registration name.
    pub buffer: String,
    /// Device on whose view the fault occurs (host for OV reads).
    pub device: DeviceId,
    /// Affected element interval `[lo, hi)`.
    pub section: (u64, u64),
    /// Human-readable description.
    pub message: String,
    /// Repair hint, drawn from [`hints`] — the same vocabulary dynamic
    /// reports use, so the two can be compared.
    pub suggested_fix: String,
}

impl Diagnostic {
    /// Convert to the shared [`Report`] shape for Archer-style
    /// rendering next to dynamic findings.
    pub fn to_report(&self) -> Report {
        Report {
            tool: "arbalest-static",
            kind: self.kind,
            message: format!("[{}] {}", self.severity, self.message),
            buffer: Some(self.buffer.clone()),
            device: self.device,
            addr: self.section.0,
            size: (self.section.1 - self.section.0) as usize,
            loc: None,
            prev: None,
            suggested_fix: Some(self.suggested_fix.clone()),
        }
    }
}

/// Analyze a program, returning its diagnostics (deduplicated, `Must`
/// first, then by buffer and section).
pub fn analyze(p: &Program) -> Vec<Diagnostic> {
    let mut a = Analyzer::new(p);
    a.exec_nodes(&p.nodes);
    a.finish()
}

// ---------------------------------------------------------------------
// The may/must lattice
// ---------------------------------------------------------------------

/// Abstract VSM state of one buffer section: the `(valid, init)` mask
/// pairs of the must- and may-approximations. Invariant: `must ⊆ may`
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Abs {
    must_valid: u8,
    must_init: u8,
    may_valid: u8,
    may_init: u8,
}

impl Abs {
    const BOTTOM: Abs = Abs { must_valid: 0, must_init: 0, may_valid: 0, may_init: 0 };

    fn gran(valid: u8, init: u8) -> GranuleState {
        GranuleState { valid_mask: valid, init_mask: init, ..Default::default() }
    }

    /// Apply a VSM op that executes on every run: componentwise
    /// `vsm::apply` (exact, by monotonicity of every transition).
    fn step_must(self, op: VsmOp) -> Abs {
        let must = vsm::apply(Self::gran(self.must_valid, self.must_init), op).0;
        let may = vsm::apply(Self::gran(self.may_valid, self.may_init), op).0;
        Abs {
            must_valid: must.valid_mask,
            must_init: must.init_mask,
            may_valid: may.valid_mask,
            may_init: may.init_mask,
        }
    }

    /// Apply a VSM op that may or may not execute: join with the
    /// unchanged state (may-union, must-intersection).
    fn step_may(self, op: VsmOp) -> Abs {
        self.join(self.step_must(op))
    }

    fn step(self, op: VsmOp, c: Certainty) -> Abs {
        match c {
            Certainty::Must => self.step_must(op),
            Certainty::May => self.step_may(op),
        }
    }

    fn join(self, o: Abs) -> Abs {
        Abs {
            must_valid: self.must_valid & o.must_valid,
            must_init: self.must_init & o.must_init,
            may_valid: self.may_valid | o.may_valid,
            may_init: self.may_init | o.may_init,
        }
    }

    /// Static read check of the location with mask `bit`, for an access
    /// with certainty `c`. Returns the violation and its severity, or
    /// `None` when the read is definitely clean.
    fn check_read(self, bit: u8, c: Certainty) -> Option<(Severity, ViolationKind)> {
        let kind = if self.must_init & bit != 0 { ViolationKind::Usd } else { ViolationKind::Uum };
        if self.may_valid & bit == 0 {
            // Invalid on every execution: faults whenever the access runs.
            Some((Severity::of(c), kind))
        } else if self.must_valid & bit == 0 {
            // Invalid on some execution only.
            Some((Severity::May, kind))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Section-partitioned buffer state
// ---------------------------------------------------------------------

/// Per-buffer abstract state: a partition of `[0, len)` (element units)
/// into maximal segments of equal [`Abs`] state.
struct BufState {
    len: u64,
    segs: Vec<(u64, u64, Abs)>,
}

impl BufState {
    fn new(len: u64, init: Abs) -> BufState {
        BufState { len, segs: if len > 0 { vec![(0, len, init)] } else { Vec::new() } }
    }

    fn split_at(&mut self, x: u64) {
        if x == 0 || x >= self.len {
            return;
        }
        if let Some(i) = self.segs.iter().position(|&(lo, hi, _)| lo < x && x < hi) {
            let (lo, hi, s) = self.segs[i];
            self.segs[i] = (lo, x, s);
            self.segs.insert(i + 1, (x, hi, s));
        }
    }

    /// Apply `f` to every segment of `[lo, hi)`, splitting at the
    /// boundaries and re-merging equal neighbours afterwards.
    fn apply_range(&mut self, lo: u64, hi: u64, mut f: impl FnMut(Abs) -> Abs) {
        let (lo, hi) = (lo.min(self.len), hi.min(self.len));
        if lo >= hi {
            return;
        }
        self.split_at(lo);
        self.split_at(hi);
        for seg in &mut self.segs {
            if seg.0 >= lo && seg.1 <= hi {
                seg.2 = f(seg.2);
            }
        }
        self.merge();
    }

    /// The segments overlapping `[lo, hi)`, clipped to it.
    fn view(&self, lo: u64, hi: u64) -> Vec<(u64, u64, Abs)> {
        let (lo, hi) = (lo.min(self.len), hi.min(self.len));
        self.segs
            .iter()
            .filter(|&&(slo, shi, _)| shi > lo && slo < hi)
            .map(|&(slo, shi, s)| (slo.max(lo), shi.min(hi), s))
            .collect()
    }

    fn merge(&mut self) {
        self.segs.dedup_by(|next, prev| {
            if prev.1 == next.0 && prev.2 == next.2 {
                prev.1 = next.1;
                true
            } else {
                false
            }
        });
    }
}

// ---------------------------------------------------------------------
// Concrete mapping structure (Table I)
// ---------------------------------------------------------------------

/// A present-table entry: the mapped element interval as written in the
/// creating map clause (possibly exceeding the declared extent — that
/// is the BO bug class) plus the reference count.
#[derive(Debug, Clone, Copy)]
struct Entry {
    lo: u64,
    hi: u64,
    rc: u32,
}

/// One effect of a construct, for the nowait conflict pass.
#[derive(Debug, Clone, Copy)]
struct EffectRange {
    buf: BufId,
    lo: u64,
    hi: u64,
    is_write: bool,
}

/// A submitted-but-unjoined `nowait` target.
struct Pending {
    seq: u64,
    id: arbalest_ir::TargetId,
    depends: Vec<arbalest_ir::DependClause>,
    effects: Vec<EffectRange>,
}

// ---------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------

struct Analyzer<'a> {
    p: &'a Program,
    bufs: Vec<BufState>,
    present: BTreeMap<(u16, u32), Entry>,
    pending: Vec<Pending>,
    next_seq: u64,
    diags: Vec<Diagnostic>,
    seen: BTreeSet<(&'static str, String, u64, u64, Severity)>,
}

impl<'a> Analyzer<'a> {
    fn new(p: &'a Program) -> Analyzer<'a> {
        let bufs = p
            .buffers
            .iter()
            .map(|d| {
                let mut st = BufState::new(d.len, Abs::BOTTOM);
                if let Some((c, sect)) = d.host_init {
                    let (lo, hi) = sect.resolve(d.len);
                    let host = StorageLoc::Host;
                    st.apply_range(lo, hi, |a| a.step(VsmOp::Write(host), c));
                }
                st
            })
            .collect();
        Analyzer {
            p,
            bufs,
            present: BTreeMap::new(),
            pending: Vec::new(),
            next_seq: 0,
            diags: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    fn finish(mut self) -> Vec<Diagnostic> {
        self.diags.sort_by(|a, b| {
            (a.severity, &a.buffer, a.section, a.kind.label())
                .cmp(&(b.severity, &b.buffer, b.section, b.kind.label()))
        });
        self.diags
    }

    fn name(&self, b: BufId) -> &str {
        &self.p.decl(b).name
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        severity: Severity,
        kind: ReportKind,
        buf: BufId,
        device: DeviceId,
        section: (u64, u64),
        message: String,
        suggested_fix: String,
    ) {
        let key = (kind.label(), self.name(buf).to_string(), section.0, section.1, severity);
        if self.seen.insert(key) {
            self.diags.push(Diagnostic {
                severity,
                kind,
                buffer: self.name(buf).to_string(),
                device,
                section,
                message,
                suggested_fix,
            });
        }
    }

    // ---- node dispatch ----

    fn exec_nodes(&mut self, nodes: &[Node]) {
        for n in nodes {
            match n {
                Node::Target(t) => self.exec_target(t),
                Node::TargetData { device, maps, body } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_entry(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                    self.exec_nodes(body);
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_exit(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::EnterData { device, maps } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_entry(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::ExitData { device, maps } => {
                    let mut effects = Vec::new();
                    for m in maps {
                        self.map_exit(*device, m, &mut effects);
                    }
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::Update { device, to_device, buf } => {
                    let mut effects = Vec::new();
                    self.update(*device, *to_device, *buf, &mut effects);
                    self.race_check(&effects, &BTreeSet::new());
                }
                Node::Host(a) => {
                    let decl = self.p.decl(a.buf);
                    let (lo, hi) = a.sect.resolve(decl.len);
                    let effects = vec![EffectRange {
                        buf: a.buf,
                        lo: lo.min(decl.len),
                        hi: hi.min(decl.len),
                        is_write: a.is_write,
                    }];
                    self.race_check(&effects, &BTreeSet::new());
                    self.host_access(a);
                }
                Node::Taskwait => self.pending.clear(),
                Node::Wait { target } => {
                    // Completion of a task implies completion of its
                    // transitive depend-predecessors.
                    if let Some(i) = self.pending.iter().position(|t| t.id == *target) {
                        let preds = self.preds_of(&self.pending[i].depends, self.pending[i].seq);
                        self.pending
                            .retain(|t| t.id != *target && !preds.contains(&t.seq));
                    }
                }
            }
        }
    }

    fn exec_target(&mut self, t: &TargetNode) {
        if t.device.is_host() {
            // A host-device target runs on the OV directly; the corpus
            // uses it without map clauses (c14-style).
            for a in &t.body {
                self.host_access(a);
            }
            return;
        }
        let ordered = self.preds_of(&t.depends, u64::MAX);
        let mut effects = Vec::new();
        for m in &t.maps {
            self.map_entry(t.device, m, &mut effects);
        }
        for a in &t.body {
            let decl = self.p.decl(a.buf);
            let (lo, hi) = a.sect.resolve(decl.len);
            effects.push(EffectRange {
                buf: a.buf,
                lo: lo.min(decl.len),
                hi: hi.min(decl.len),
                is_write: a.is_write,
            });
            self.device_access(t.device, a);
        }
        for m in &t.maps {
            self.map_exit(t.device, m, &mut effects);
        }
        self.race_check(&effects, &ordered);
        if t.nowait {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(Pending { seq, id: t.id, depends: t.depends.clone(), effects });
        } else {
            // A synchronous dependent target joins its predecessors.
            self.pending.retain(|p| !ordered.contains(&p.seq));
        }
    }

    // ---- the depend/nowait task graph ----

    /// The pending tasks ordered before a construct with `depends`
    /// submitted at sequence `before`, transitively closed with a
    /// worklist over depend-clause conflicts.
    fn preds_of(&self, depends: &[arbalest_ir::DependClause], before: u64) -> BTreeSet<u64> {
        fn conflicts(a: &[arbalest_ir::DependClause], b: &[arbalest_ir::DependClause]) -> bool {
            a.iter().any(|x| b.iter().any(|y| x.buf == y.buf && (x.is_write || y.is_write)))
        }
        let mut ordered: BTreeSet<u64> = BTreeSet::new();
        let mut work: Vec<(u64, Vec<arbalest_ir::DependClause>)> = vec![(before, depends.to_vec())];
        while let Some((limit, deps)) = work.pop() {
            for p in &self.pending {
                if p.seq < limit && !ordered.contains(&p.seq) && conflicts(&p.depends, &deps) {
                    ordered.insert(p.seq);
                    work.push((p.seq, p.depends.clone()));
                }
            }
        }
        ordered
    }

    /// Flag overlap between a construct's effects and every pending
    /// task not ordered before it: a data-dependent race.
    fn race_check(&mut self, effects: &[EffectRange], ordered: &BTreeSet<u64>) {
        let mut found: Vec<(BufId, u64, u64)> = Vec::new();
        for p in &self.pending {
            if ordered.contains(&p.seq) {
                continue;
            }
            for e in effects {
                for pe in &p.effects {
                    if e.buf == pe.buf
                        && (e.is_write || pe.is_write)
                        && e.lo < pe.hi
                        && pe.lo < e.hi
                    {
                        found.push((e.buf, e.lo.max(pe.lo), e.hi.min(pe.hi)));
                    }
                }
            }
        }
        for (buf, lo, hi) in found {
            let msg = format!(
                "unordered accesses to '{}'[{lo}..{hi}] overlap with a pending nowait target",
                self.name(buf)
            );
            self.emit(
                Severity::May,
                ReportKind::DataRace,
                buf,
                DeviceId::ACCEL0,
                (lo, hi),
                msg,
                hints::ORDER_ACCESSES.to_string(),
            );
        }
    }

    // ---- Table I mapping semantics ----

    fn map_entry(&mut self, device: DeviceId, m: &MapClause, effects: &mut Vec<EffectRange>) {
        if matches!(m.map_type, MapType::Release | MapType::Delete) {
            return; // no entry-side effect
        }
        let key = (device.0, m.buf.0);
        if let Some(e) = self.present.get_mut(&key) {
            e.rc += 1;
            return;
        }
        let decl = self.p.decl(m.buf);
        let (lo, hi) = m.sect.resolve(decl.len);
        self.present.insert(key, Entry { lo, hi, rc: 1 });
        let (clo, chi) = (lo.min(decl.len), hi.min(decl.len));
        let dev = device.0 as u8;
        self.bufs[m.buf.0 as usize].apply_range(clo, chi, |a| a.step_must(VsmOp::Allocate(dev)));
        if m.map_type.copies_to_device() {
            if hi > decl.len {
                let msg = format!(
                    "entry transfer of '{}'[{lo}..{hi}] exceeds the variable's extent ({} elements)",
                    decl.name, decl.len
                );
                let fix = hints::shrink_section(&decl.name);
                self.emit(
                    Severity::Must,
                    ReportKind::MappingOverflow,
                    m.buf,
                    device,
                    (lo, hi),
                    msg,
                    fix,
                );
            }
            self.bufs[m.buf.0 as usize]
                .apply_range(clo, chi, |a| a.step_must(VsmOp::UpdateToDevice(dev)));
            effects.push(EffectRange { buf: m.buf, lo: clo, hi: chi, is_write: true });
        }
    }

    fn map_exit(&mut self, device: DeviceId, m: &MapClause, effects: &mut Vec<EffectRange>) {
        let key = (device.0, m.buf.0);
        let Some(e) = self.present.get_mut(&key) else {
            return; // exit over an absent entry is a no-op
        };
        e.rc = if m.map_type == MapType::Delete { 0 } else { e.rc.saturating_sub(1) };
        if e.rc > 0 {
            return;
        }
        let entry = self.present.remove(&key).expect("entry just seen");
        let decl = self.p.decl(m.buf);
        let (clo, chi) = (entry.lo.min(decl.len), entry.hi.min(decl.len));
        let dev = device.0 as u8;
        if m.map_type.copies_from_device() {
            // The exit transfer moves the *entry's* recorded section.
            if entry.hi > decl.len {
                let msg = format!(
                    "exit transfer of '{}'[{}..{}] exceeds the variable's extent ({} elements)",
                    decl.name, entry.lo, entry.hi, decl.len
                );
                let fix = hints::shrink_section(&decl.name);
                self.emit(
                    Severity::Must,
                    ReportKind::MappingOverflow,
                    m.buf,
                    device,
                    (entry.lo, entry.hi),
                    msg,
                    fix,
                );
            }
            self.bufs[m.buf.0 as usize]
                .apply_range(clo, chi, |a| a.step_must(VsmOp::UpdateFromDevice(dev)));
            effects.push(EffectRange { buf: m.buf, lo: clo, hi: chi, is_write: true });
        }
        self.bufs[m.buf.0 as usize].apply_range(clo, chi, |a| a.step_must(VsmOp::Release(dev)));
    }

    fn update(
        &mut self,
        device: DeviceId,
        to_device: bool,
        buf: BufId,
        effects: &mut Vec<EffectRange>,
    ) {
        let key = (device.0, buf.0);
        let Some(entry) = self.present.get(&key).copied() else {
            return; // update of an unmapped variable is a no-op
        };
        let decl = self.p.decl(buf);
        if entry.hi > decl.len {
            let msg = format!(
                "update transfer of '{}'[{}..{}] exceeds the variable's extent ({} elements)",
                decl.name, entry.lo, entry.hi, decl.len
            );
            let fix = hints::shrink_section(&decl.name);
            self.emit(
                Severity::Must,
                ReportKind::MappingOverflow,
                buf,
                device,
                (entry.lo, entry.hi),
                msg,
                fix,
            );
        }
        let (clo, chi) = (entry.lo.min(decl.len), entry.hi.min(decl.len));
        let dev = device.0 as u8;
        let op = if to_device { VsmOp::UpdateToDevice(dev) } else { VsmOp::UpdateFromDevice(dev) };
        self.bufs[buf.0 as usize].apply_range(clo, chi, |a| a.step_must(op));
        effects.push(EffectRange { buf, lo: clo, hi: chi, is_write: true });
    }

    // ---- accesses ----

    fn host_access(&mut self, a: &Access) {
        let decl = self.p.decl(a.buf);
        let (lo, hi) = a.sect.resolve(decl.len);
        let (lo, hi) = (lo.min(decl.len), hi.min(decl.len));
        self.vsm_access(a, DeviceId::HOST, StorageLoc::Host, lo, hi);
    }

    fn device_access(&mut self, device: DeviceId, a: &Access) {
        let decl = self.p.decl(a.buf);
        let (lo, hi) = a.sect.resolve(decl.len);
        let (lo, hi) = (lo.min(decl.len), hi.min(decl.len));
        let Some(entry) = self.present.get(&(device.0, a.buf.0)).copied() else {
            let msg = format!(
                "kernel {} '{}'[{lo}..{hi}] on {device} with no mapping present",
                if a.is_write { "writes" } else { "reads" },
                decl.name
            );
            self.emit(
                Severity::of(a.certainty),
                ReportKind::MappingOverflow,
                a.buf,
                device,
                (lo, hi),
                msg,
                hints::ADD_MAP.to_string(),
            );
            return;
        };
        if lo < entry.lo || hi > entry.hi.min(decl.len) {
            let msg = format!(
                "kernel access to '{}'[{lo}..{hi}] lies outside the mapped section [{}..{}]",
                decl.name,
                entry.lo,
                entry.hi.min(decl.len)
            );
            self.emit(
                Severity::of(a.certainty),
                ReportKind::MappingOverflow,
                a.buf,
                device,
                (lo, hi),
                msg,
                hints::CHECK_BOUNDS.to_string(),
            );
        }
        let (lo, hi) = (lo.max(entry.lo), hi.min(entry.hi.min(decl.len)));
        if lo < hi {
            self.vsm_access(a, device, StorageLoc::Device(device.0 as u8), lo, hi);
        }
    }

    fn vsm_access(&mut self, a: &Access, device: DeviceId, loc: StorageLoc, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        if a.is_write {
            self.bufs[a.buf.0 as usize]
                .apply_range(lo, hi, |s| s.step(VsmOp::Write(loc), a.certainty));
            return;
        }
        // Reads never mutate abstract state; check each distinct segment.
        let mut faults: Vec<(u64, u64, Severity, ViolationKind)> = Vec::new();
        for (slo, shi, abs) in self.bufs[a.buf.0 as usize].view(lo, hi) {
            if let Some((sev, kind)) = abs.check_read(loc.bit(), a.certainty) {
                faults.push((slo, shi, sev, kind));
            }
        }
        for (slo, shi, sev, kind) in faults {
            let (kind, what) = match kind {
                ViolationKind::Uum => (ReportKind::MappingUum, "uninitialised memory"),
                ViolationKind::Usd => (ReportKind::MappingUsd, "stale data"),
            };
            let verb = match sev {
                Severity::Must => "reads",
                Severity::May => "may read",
            };
            let msg =
                format!("'{}'[{slo}..{shi}] {verb} {what} on {device}", self.name(a.buf));
            let fix = hints::for_read(kind, device).to_string();
            self.emit(sev, kind, a.buf, device, (slo, shi), msg, fix);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arbalest_ir::{ProgramBuilder, Sect};

    fn kinds(diags: &[Diagnostic]) -> Vec<(Severity, ReportKind)> {
        diags.iter().map(|d| (d.severity, d.kind)).collect()
    }

    #[test]
    fn clean_to_from_program_has_no_findings() {
        let mut p = ProgramBuilder::new("clean");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        p.host_read(out);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn alloc_instead_of_to_is_a_must_uum() {
        let mut p = ProgramBuilder::new("uum");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_alloc(a).reads(a).done();
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUum)]);
        assert_eq!(d[0].suggested_fix, hints::UUM_DEVICE);
    }

    #[test]
    fn missing_copy_back_is_a_must_usd_on_the_host() {
        let mut p = ProgramBuilder::new("usd");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to(a).reads(a).writes(a).done();
        p.host_read_sec(a, 0, 1);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUsd)]);
        assert_eq!(d[0].suggested_fix, hints::USD_HOST);
        assert_eq!(d[0].device, DeviceId::HOST);
    }

    #[test]
    fn oversized_section_is_a_must_overflow_with_the_shrink_hint() {
        let mut p = ProgramBuilder::new("bo");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_to_sec(a, 0, 24).reads(a).done();
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingOverflow)]);
        assert_eq!(d[0].suggested_fix, hints::shrink_section("a"));
    }

    #[test]
    fn oversized_alloc_flags_at_the_exit_transfer() {
        // From-map: no entry transfer, so the overflow surfaces when the
        // exit transfer moves the entry's oversized section.
        let mut p = ProgramBuilder::new("bo-exit");
        let a = p.buffer("a", 8, 16);
        p.target().map_from_sec(a, 0, 24).writes(a).done();
        p.host_read_sec(a, 0, 1);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingOverflow)]);
    }

    #[test]
    fn data_dependent_host_write_downgrades_to_may() {
        let mut p = ProgramBuilder::new("may-usd");
        let a = p.buffer_init("a", 8, 16);
        let out = p.buffer("out", 8, 16);
        p.data().map_to(a).map_from(out).scope(|p| {
            p.host_may_write(a);
            p.target().map_to(a).map_from(out).reads(a).writes(out).done();
        });
        p.host_read(out);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::MappingUsd)]);
    }

    #[test]
    fn may_initialised_buffer_downgrades_to_may_uum() {
        let mut p = ProgramBuilder::new("may-uum");
        let mut q = ProgramBuilder::new("must-uum");
        for (b, init_known) in [(&mut p, true), (&mut q, false)] {
            let a = if init_known {
                b.buffer_init_may("a", 8, 16)
            } else {
                b.buffer("a", 8, 16)
            };
            b.target().map_to(a).reads(a).done();
        }
        assert_eq!(kinds(&analyze(&p.build())), vec![(Severity::May, ReportKind::MappingUum)]);
        assert_eq!(kinds(&analyze(&q.build())), vec![(Severity::Must, ReportKind::MappingUum)]);
    }

    #[test]
    fn write_then_read_scratch_is_clean() {
        let mut p = ProgramBuilder::new("scratch");
        let s = p.buffer("s", 8, 16);
        p.target().map_alloc(s).writes(s).reads(s).done();
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn refcount_suppresses_the_inner_exit_transfer() {
        // Table I: the inner tofrom exit decrements to 1 and must NOT
        // copy back — the host read inside the region is a definite USD.
        let mut p = ProgramBuilder::new("rc");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_tofrom(a).reads(a).writes(a).done();
            p.host_read_sec(a, 7, 1);
        });
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUsd)]);
        assert_eq!(d[0].section, (7, 8));
    }

    #[test]
    fn remap_after_release_loses_the_device_copy() {
        let mut p = ProgramBuilder::new("epoch");
        let a = p.buffer_init("a", 8, 16);
        p.enter_data(vec![MapClause { buf: a, map_type: MapType::To, sect: Sect::Full }]);
        p.target().map_to(a).reads(a).writes(a).done();
        p.exit_data(vec![MapClause { buf: a, map_type: MapType::Release, sect: Sect::Full }]);
        p.enter_data(vec![MapClause { buf: a, map_type: MapType::Alloc, sect: Sect::Full }]);
        p.target().map_alloc(a).reads(a).done();
        p.exit_data(vec![MapClause { buf: a, map_type: MapType::Release, sect: Sect::Full }]);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::Must, ReportKind::MappingUum)]);
    }

    #[test]
    fn unordered_nowait_overlap_is_a_may_race() {
        let mut p = ProgramBuilder::new("race");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_to(a).nowait().writes(a).done();
            p.target().map_to(a).nowait().writes(a).done();
            p.taskwait();
        });
        p.host_read(a);
        let d = analyze(&p.build());
        assert_eq!(kinds(&d), vec![(Severity::May, ReportKind::DataRace)]);
    }

    #[test]
    fn depend_chain_orders_nowait_tasks() {
        let mut p = ProgramBuilder::new("chain");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            for _ in 0..3 {
                p.target().map_to(a).nowait().depend_write(a).reads(a).writes(a).done();
            }
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn disjoint_nowait_halves_do_not_race() {
        let mut p = ProgramBuilder::new("halves");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            p.target().map_to(a).nowait().writes_sec(a, 0, 8).done();
            p.target().map_to(a).nowait().writes_sec(a, 8, 8).done();
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn wait_joins_the_task_and_its_predecessors() {
        let mut p = ProgramBuilder::new("wait");
        let a = p.buffer_init("a", 8, 16);
        p.data().map_tofrom(a).scope(|p| {
            let h = p.target().map_to(a).nowait().reads(a).writes(a).done();
            p.wait(h);
            p.taskwait();
        });
        p.host_read(a);
        assert!(analyze(&p.build()).is_empty());
    }

    #[test]
    fn diagnostics_render_through_the_shared_report_shape() {
        let mut p = ProgramBuilder::new("render");
        let a = p.buffer_init("a", 8, 16);
        p.target().map_alloc(a).reads(a).done();
        let d = analyze(&p.build());
        let r = d[0].to_report();
        let text = r.render();
        assert!(text.contains("ArbalestStatic"), "{text}");
        assert!(text.contains("mapping-issue(UUM)"), "{text}");
        assert!(text.contains("Suggested fix"), "{text}");
        assert!(r.message.starts_with("[must]"));
    }
}
