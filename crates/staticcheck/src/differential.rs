//! Differential fuzzing oracle behind `arbalest fuzz-lint`.
//!
//! For each case — a seeded random program from
//! [`arbalest_ir::generate`] or any hand-authored IR model — the static
//! analyzer runs over the *original* (possibly symbolic) program while
//! the [`arbalest_ir::interp`] interpreter executes its concretization
//! on the real runtime with the dynamic detector attached. The two
//! report streams are then compared on `(class, buffer)` pairs, where
//! the UUM and USD kinds collapse into one read-fault class: the static
//! verdict's kind comes from the intersected loop invariant while the
//! dynamic one reflects the actual iteration that faulted, so the kinds
//! can legitimately differ even when both tools agree a read faults.
//!
//! Two invariants must hold for every case:
//!
//! 1. **Soundness of `Must`** — every static `Must` diagnostic is
//!    confirmed by a dynamic report on the same `(class, buffer)`.
//! 2. **Completeness of `May`** — every dynamic report (in the static
//!    vocabulary) appears statically at some severity.
//!
//! One carve-out: when *either* tool reports a data race on a buffer,
//! that buffer's read-fault and bounds classes are excluded from both
//! invariants. Under a race the dynamic schedule decides whether a read
//! observes a transfer at all, so per-run reports on that buffer are
//! not a ground truth either verdict must match. The race class itself
//! is still compared: a dynamic race must be statically anticipated.
//!
//! The summary also records the *precision ratio*: the fraction of all
//! static diagnostics that the dynamic run confirmed. Ratios below 1.0
//! quantify the May-noise the §VI-G argument predicts for a static
//! tool; invariant violations, by contrast, are bugs.

use crate::{analyze, Severity};
use arbalest_core::{Arbalest, ArbalestConfig};
use arbalest_ir::{generate, interp, Binding, Program};
use arbalest_offload::report::ReportKind;
use arbalest_offload::runtime::{Config, Runtime};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Collapse a report kind into the comparison class, or `None` when the
/// kind is outside the static analyzer's vocabulary (those dynamic
/// reports are not the oracle's business).
fn class(kind: ReportKind) -> Option<&'static str> {
    match kind {
        ReportKind::MappingUum | ReportKind::MappingUsd => Some("read-fault"),
        ReportKind::MappingOverflow => Some("bounds"),
        ReportKind::DataRace => Some("race"),
        _ => None,
    }
}

/// Outcome of one differential case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Program name (e.g. `fuzz-00042` or a DRACC id).
    pub name: String,
    /// Static diagnostics at `Must` severity.
    pub static_must: usize,
    /// Static diagnostics at `May` severity.
    pub static_may: usize,
    /// Dynamic reports within the static vocabulary.
    pub dynamic: usize,
    /// Static diagnostics (any severity) confirmed dynamically.
    pub confirmed: usize,
    /// Invariant violations, empty when the case passes.
    pub violations: Vec<String>,
}

impl CaseOutcome {
    /// Did both invariants hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate over a batch of cases.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Cases checked.
    pub cases: usize,
    /// Total static `Must` diagnostics.
    pub static_must: usize,
    /// Total static `May` diagnostics.
    pub static_may: usize,
    /// Total in-vocabulary dynamic reports.
    pub dynamic: usize,
    /// Static diagnostics confirmed dynamically.
    pub confirmed: usize,
    /// Every invariant violation, prefixed with its case name.
    pub violations: Vec<String>,
}

impl FuzzSummary {
    /// Did every case satisfy both invariants?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Confirmed static diagnostics over all static diagnostics (1.0
    /// when there were none).
    pub fn precision(&self) -> f64 {
        let total = self.static_must + self.static_may;
        if total == 0 {
            1.0
        } else {
            self.confirmed as f64 / total as f64
        }
    }

    /// Fold one case into the aggregate.
    pub fn absorb(&mut self, c: &CaseOutcome) {
        self.cases += 1;
        self.static_must += c.static_must;
        self.static_may += c.static_may;
        self.dynamic += c.dynamic;
        self.confirmed += c.confirmed;
        self.violations.extend(c.violations.iter().map(|v| format!("{}: {v}", c.name)));
    }
}

/// Run one program through both detectors and compare. `binding`
/// concretizes a symbolic program for the dynamic run; the static
/// analyzer always sees the original.
pub fn check_program(name: &str, program: &Program, binding: &Binding) -> CaseOutcome {
    let diags = analyze(program);
    let tool = Arc::new(Arbalest::new(ArbalestConfig::default()));
    let rt = Runtime::with_tool(Config::default(), tool);
    let mut violations = Vec::new();
    if let Err(e) = interp::run(program, binding, &rt) {
        violations.push(format!("interpreter error: {e}"));
    }
    let dynamic: BTreeSet<(&'static str, String)> = rt
        .reports()
        .iter()
        .filter_map(|r| Some((class(r.kind)?, r.buffer.clone()?)))
        .collect();

    let static_any: BTreeSet<(&'static str, String)> = diags
        .iter()
        .filter_map(|d| Some((class(d.kind)?, d.buffer.clone())))
        .collect();
    let static_must: BTreeSet<(&'static str, String)> = diags
        .iter()
        .filter(|d| d.severity == Severity::Must)
        .filter_map(|d| Some((class(d.kind)?, d.buffer.clone())))
        .collect();

    // Buffers with a race verdict (either side): their non-race classes
    // are schedule-dependent and exempt from the invariants.
    let raced: BTreeSet<&String> = static_any
        .iter()
        .chain(dynamic.iter())
        .filter(|(c, _)| *c == "race")
        .map(|(_, b)| b)
        .collect();

    for (c, b) in &static_must {
        if *c != "race" && raced.contains(b) {
            continue;
        }
        if !dynamic.contains(&(*c, b.clone())) {
            violations.push(format!("static Must {c} on '{b}' has no dynamic confirmation"));
        }
    }
    for (c, b) in &dynamic {
        if *c != "race" && raced.contains(b) {
            continue;
        }
        if !static_any.contains(&(*c, b.clone())) {
            violations.push(format!("dynamic {c} on '{b}' missed by the static analyzer"));
        }
    }
    let confirmed = static_any.iter().filter(|k| dynamic.contains(*k)).count();
    CaseOutcome {
        name: name.to_string(),
        static_must: diags.iter().filter(|d| d.severity == Severity::Must).count(),
        static_may: diags.iter().filter(|d| d.severity == Severity::May).count(),
        dynamic: dynamic.len(),
        confirmed,
        violations,
    }
}

/// Check one generated seed.
pub fn check_seed(seed: u64) -> CaseOutcome {
    let case = generate::generate(seed);
    check_program(&format!("fuzz-{seed:05}"), &case.program, &case.binding)
}

/// Run seeds `0..n` and aggregate.
pub fn fuzz(n: u64) -> FuzzSummary {
    let mut s = FuzzSummary::default();
    for seed in 0..n {
        s.absorb(&check_seed(seed));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_invariants_hold_over_the_seed_range() {
        let s = fuzz(32);
        assert_eq!(s.cases, 32);
        assert!(s.ok(), "violations: {:#?}", s.violations);
        assert!(s.precision() > 0.0);
    }

    #[test]
    fn outcomes_are_reproducible() {
        let a = check_seed(7);
        let b = check_seed(7);
        assert_eq!(a.static_must, b.static_must);
        assert_eq!(a.static_may, b.static_may);
        assert_eq!(a.dynamic, b.dynamic);
    }
}
