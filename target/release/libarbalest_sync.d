/root/repo/target/release/libarbalest_sync.rlib: /root/repo/crates/sync/src/lib.rs
