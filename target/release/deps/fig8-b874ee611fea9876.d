/root/repo/target/release/deps/fig8-b874ee611fea9876.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-b874ee611fea9876: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
