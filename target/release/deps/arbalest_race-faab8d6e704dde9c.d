/root/repo/target/release/deps/arbalest_race-faab8d6e704dde9c.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/release/deps/libarbalest_race-faab8d6e704dde9c.rlib: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/release/deps/libarbalest_race-faab8d6e704dde9c.rmeta: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
