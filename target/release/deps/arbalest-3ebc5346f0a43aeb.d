/root/repo/target/release/deps/arbalest-3ebc5346f0a43aeb.d: crates/cli/src/main.rs

/root/repo/target/release/deps/arbalest-3ebc5346f0a43aeb: crates/cli/src/main.rs

crates/cli/src/main.rs:
