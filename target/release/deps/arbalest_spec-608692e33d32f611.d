/root/repo/target/release/deps/arbalest_spec-608692e33d32f611.d: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

/root/repo/target/release/deps/libarbalest_spec-608692e33d32f611.rlib: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

/root/repo/target/release/deps/libarbalest_spec-608692e33d32f611.rmeta: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

crates/spec/src/lib.rs:
crates/spec/src/pcg.rs:
crates/spec/src/pep.rs:
crates/spec/src/polbm.rs:
crates/spec/src/pomriq.rs:
crates/spec/src/postencil.rs:
