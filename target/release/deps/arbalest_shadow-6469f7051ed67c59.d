/root/repo/target/release/deps/arbalest_shadow-6469f7051ed67c59.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/release/deps/libarbalest_shadow-6469f7051ed67c59.rlib: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/release/deps/libarbalest_shadow-6469f7051ed67c59.rmeta: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
