/root/repo/target/release/deps/arbalest_baselines-5851d7efa6fc6ada.d: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/release/deps/libarbalest_baselines-5851d7efa6fc6ada.rlib: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/release/deps/libarbalest_baselines-5851d7efa6fc6ada.rmeta: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

crates/baselines/src/lib.rs:
crates/baselines/src/archer.rs:
crates/baselines/src/asan.rs:
crates/baselines/src/memcheck.rs:
crates/baselines/src/msan.rs:
crates/baselines/src/sink.rs:
