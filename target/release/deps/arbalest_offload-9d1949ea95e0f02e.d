/root/repo/target/release/deps/arbalest_offload-9d1949ea95e0f02e.d: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs

/root/repo/target/release/deps/libarbalest_offload-9d1949ea95e0f02e.rlib: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs

/root/repo/target/release/deps/libarbalest_offload-9d1949ea95e0f02e.rmeta: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs

crates/offload/src/lib.rs:
crates/offload/src/addr.rs:
crates/offload/src/buffer.rs:
crates/offload/src/error.rs:
crates/offload/src/events.rs:
crates/offload/src/fault.rs:
crates/offload/src/mapping.rs:
crates/offload/src/mem.rs:
crates/offload/src/report.rs:
crates/offload/src/runtime.rs:
crates/offload/src/scalar.rs:
crates/offload/src/trace.rs:
