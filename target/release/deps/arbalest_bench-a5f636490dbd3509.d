/root/repo/target/release/deps/arbalest_bench-a5f636490dbd3509.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libarbalest_bench-a5f636490dbd3509.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libarbalest_bench-a5f636490dbd3509.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
