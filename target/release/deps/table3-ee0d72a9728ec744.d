/root/repo/target/release/deps/table3-ee0d72a9728ec744.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-ee0d72a9728ec744: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
