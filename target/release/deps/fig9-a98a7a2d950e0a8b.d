/root/repo/target/release/deps/fig9-a98a7a2d950e0a8b.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-a98a7a2d950e0a8b: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
