/root/repo/target/release/deps/ablations-690a62531a5981a8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-690a62531a5981a8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
