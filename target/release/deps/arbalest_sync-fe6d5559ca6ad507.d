/root/repo/target/release/deps/arbalest_sync-fe6d5559ca6ad507.d: crates/sync/src/lib.rs

/root/repo/target/release/deps/libarbalest_sync-fe6d5559ca6ad507.rlib: crates/sync/src/lib.rs

/root/repo/target/release/deps/libarbalest_sync-fe6d5559ca6ad507.rmeta: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
