/root/repo/target/release/deps/arbalest-ae28d2845d361ba7.d: src/lib.rs

/root/repo/target/release/deps/libarbalest-ae28d2845d361ba7.rlib: src/lib.rs

/root/repo/target/release/deps/libarbalest-ae28d2845d361ba7.rmeta: src/lib.rs

src/lib.rs:
