/root/repo/target/release/deps/postencil_report-7e54fc260042faa4.d: crates/bench/src/bin/postencil_report.rs

/root/repo/target/release/deps/postencil_report-7e54fc260042faa4: crates/bench/src/bin/postencil_report.rs

crates/bench/src/bin/postencil_report.rs:
