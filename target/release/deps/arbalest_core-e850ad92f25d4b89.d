/root/repo/target/release/deps/arbalest_core-e850ad92f25d4b89.d: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/release/deps/libarbalest_core-e850ad92f25d4b89.rlib: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/release/deps/libarbalest_core-e850ad92f25d4b89.rmeta: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/ddg.rs:
crates/core/src/detector.rs:
crates/core/src/replay.rs:
crates/core/src/vsm.rs:
