/root/repo/target/release/deps/arbalest_dracc-26a76105f9a038c7.d: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/release/deps/libarbalest_dracc-26a76105f9a038c7.rlib: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/release/deps/libarbalest_dracc-26a76105f9a038c7.rmeta: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

crates/dracc/src/lib.rs:
crates/dracc/src/buggy.rs:
crates/dracc/src/correct.rs:
