/root/repo/target/debug/libarbalest_race.rlib: /root/repo/crates/race/src/clock.rs /root/repo/crates/race/src/engine.rs /root/repo/crates/race/src/lib.rs /root/repo/crates/sync/src/lib.rs
