/root/repo/target/debug/deps/ablations-c0aad9de70baccb3.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c0aad9de70baccb3: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
