/root/repo/target/debug/deps/tools-15a8857f9f5f479c.d: crates/bench/benches/tools.rs Cargo.toml

/root/repo/target/debug/deps/libtools-15a8857f9f5f479c.rmeta: crates/bench/benches/tools.rs Cargo.toml

crates/bench/benches/tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
