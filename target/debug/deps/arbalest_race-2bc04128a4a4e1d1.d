/root/repo/target/debug/deps/arbalest_race-2bc04128a4a4e1d1.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/debug/deps/libarbalest_race-2bc04128a4a4e1d1.rmeta: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
