/root/repo/target/debug/deps/arbalest_bench-404dc7de8e93523d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbalest_bench-404dc7de8e93523d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbalest_bench-404dc7de8e93523d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
