/root/repo/target/debug/deps/extended_constructs-bcbe7d0ff64c6b81.d: crates/offload/tests/extended_constructs.rs

/root/repo/target/debug/deps/extended_constructs-bcbe7d0ff64c6b81: crates/offload/tests/extended_constructs.rs

crates/offload/tests/extended_constructs.rs:
