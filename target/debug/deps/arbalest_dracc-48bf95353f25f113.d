/root/repo/target/debug/deps/arbalest_dracc-48bf95353f25f113.d: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/debug/deps/libarbalest_dracc-48bf95353f25f113.rmeta: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

crates/dracc/src/lib.rs:
crates/dracc/src/buggy.rs:
crates/dracc/src/correct.rs:
