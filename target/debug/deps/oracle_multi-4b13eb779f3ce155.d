/root/repo/target/debug/deps/oracle_multi-4b13eb779f3ce155.d: tests/oracle_multi.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_multi-4b13eb779f3ce155.rmeta: tests/oracle_multi.rs Cargo.toml

tests/oracle_multi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
