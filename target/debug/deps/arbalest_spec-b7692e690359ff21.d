/root/repo/target/debug/deps/arbalest_spec-b7692e690359ff21.d: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

/root/repo/target/debug/deps/arbalest_spec-b7692e690359ff21: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

crates/spec/src/lib.rs:
crates/spec/src/pcg.rs:
crates/spec/src/pep.rs:
crates/spec/src/polbm.rs:
crates/spec/src/pomriq.rs:
crates/spec/src/postencil.rs:
