/root/repo/target/debug/deps/cli-910bcc49fd09a09a.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-910bcc49fd09a09a.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_arbalest=placeholder:arbalest
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
