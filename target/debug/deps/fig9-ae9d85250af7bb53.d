/root/repo/target/debug/deps/fig9-ae9d85250af7bb53.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-ae9d85250af7bb53: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
