/root/repo/target/debug/deps/arbalest-0e0f9bf73bc2605c.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/arbalest-0e0f9bf73bc2605c: crates/cli/src/main.rs

crates/cli/src/main.rs:
