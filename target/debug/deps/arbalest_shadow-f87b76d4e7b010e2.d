/root/repo/target/debug/deps/arbalest_shadow-f87b76d4e7b010e2.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_shadow-f87b76d4e7b010e2.rmeta: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs Cargo.toml

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
