/root/repo/target/debug/deps/arbalest_baselines-a81353742bf0021c.d: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/debug/deps/arbalest_baselines-a81353742bf0021c: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

crates/baselines/src/lib.rs:
crates/baselines/src/archer.rs:
crates/baselines/src/asan.rs:
crates/baselines/src/memcheck.rs:
crates/baselines/src/msan.rs:
crates/baselines/src/sink.rs:
