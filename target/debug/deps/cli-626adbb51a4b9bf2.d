/root/repo/target/debug/deps/cli-626adbb51a4b9bf2.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-626adbb51a4b9bf2: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_arbalest=/root/repo/target/debug/arbalest
