/root/repo/target/debug/deps/oracle_multi-ad4a48456f5957ee.d: tests/oracle_multi.rs

/root/repo/target/debug/deps/oracle_multi-ad4a48456f5957ee: tests/oracle_multi.rs

tests/oracle_multi.rs:
