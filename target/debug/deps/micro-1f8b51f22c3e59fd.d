/root/repo/target/debug/deps/micro-1f8b51f22c3e59fd.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-1f8b51f22c3e59fd.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
