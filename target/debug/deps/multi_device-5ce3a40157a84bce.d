/root/repo/target/debug/deps/multi_device-5ce3a40157a84bce.d: crates/core/tests/multi_device.rs

/root/repo/target/debug/deps/multi_device-5ce3a40157a84bce: crates/core/tests/multi_device.rs

crates/core/tests/multi_device.rs:
