/root/repo/target/debug/deps/fault_recovery-e0913038f206b08e.d: tests/fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfault_recovery-e0913038f206b08e.rmeta: tests/fault_recovery.rs Cargo.toml

tests/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
