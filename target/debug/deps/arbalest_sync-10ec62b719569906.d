/root/repo/target/debug/deps/arbalest_sync-10ec62b719569906.d: crates/sync/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_sync-10ec62b719569906.rmeta: crates/sync/src/lib.rs Cargo.toml

crates/sync/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
