/root/repo/target/debug/deps/ablations-ce1a7af453c5e493.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-ce1a7af453c5e493.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
