/root/repo/target/debug/deps/arbalest_bench-775b0faf52ecf013.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libarbalest_bench-775b0faf52ecf013.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
