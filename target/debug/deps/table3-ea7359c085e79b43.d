/root/repo/target/debug/deps/table3-ea7359c085e79b43.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ea7359c085e79b43: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
