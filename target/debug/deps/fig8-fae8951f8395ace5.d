/root/repo/target/debug/deps/fig8-fae8951f8395ace5.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fae8951f8395ace5: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
