/root/repo/target/debug/deps/arbalest_core-23f15e6083f57d5d.d: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/libarbalest_core-23f15e6083f57d5d.rlib: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/libarbalest_core-23f15e6083f57d5d.rmeta: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/ddg.rs:
crates/core/src/detector.rs:
crates/core/src/replay.rs:
crates/core/src/vsm.rs:
