/root/repo/target/debug/deps/table3-7a91a3b035b8cb14.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-7a91a3b035b8cb14.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
