/root/repo/target/debug/deps/soak-42d968e250d8f4e9.d: tests/soak.rs

/root/repo/target/debug/deps/soak-42d968e250d8f4e9: tests/soak.rs

tests/soak.rs:
