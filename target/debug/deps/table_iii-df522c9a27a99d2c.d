/root/repo/target/debug/deps/table_iii-df522c9a27a99d2c.d: crates/dracc/tests/table_iii.rs Cargo.toml

/root/repo/target/debug/deps/libtable_iii-df522c9a27a99d2c.rmeta: crates/dracc/tests/table_iii.rs Cargo.toml

crates/dracc/tests/table_iii.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
