/root/repo/target/debug/deps/postencil_report-051515b46950a086.d: crates/bench/src/bin/postencil_report.rs

/root/repo/target/debug/deps/postencil_report-051515b46950a086: crates/bench/src/bin/postencil_report.rs

crates/bench/src/bin/postencil_report.rs:
