/root/repo/target/debug/deps/atomics-d6526e0bb0e399c7.d: crates/offload/tests/atomics.rs Cargo.toml

/root/repo/target/debug/deps/libatomics-d6526e0bb0e399c7.rmeta: crates/offload/tests/atomics.rs Cargo.toml

crates/offload/tests/atomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
