/root/repo/target/debug/deps/arbalest_dracc-2c285287f12819fe.d: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/debug/deps/arbalest_dracc-2c285287f12819fe: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

crates/dracc/src/lib.rs:
crates/dracc/src/buggy.rs:
crates/dracc/src/correct.rs:
