/root/repo/target/debug/deps/offline_replay-9f3f225419c7dba2.d: crates/core/tests/offline_replay.rs Cargo.toml

/root/repo/target/debug/deps/liboffline_replay-9f3f225419c7dba2.rmeta: crates/core/tests/offline_replay.rs Cargo.toml

crates/core/tests/offline_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
