/root/repo/target/debug/deps/arbalest_bench-7ec341fb88213835.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_bench-7ec341fb88213835.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
