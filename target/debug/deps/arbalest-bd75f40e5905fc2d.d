/root/repo/target/debug/deps/arbalest-bd75f40e5905fc2d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest-bd75f40e5905fc2d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
