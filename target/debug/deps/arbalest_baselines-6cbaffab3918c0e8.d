/root/repo/target/debug/deps/arbalest_baselines-6cbaffab3918c0e8.d: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_baselines-6cbaffab3918c0e8.rmeta: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/archer.rs:
crates/baselines/src/asan.rs:
crates/baselines/src/memcheck.rs:
crates/baselines/src/msan.rs:
crates/baselines/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
