/root/repo/target/debug/deps/critical_sections-e75e8883aaa21c50.d: crates/offload/tests/critical_sections.rs Cargo.toml

/root/repo/target/debug/deps/libcritical_sections-e75e8883aaa21c50.rmeta: crates/offload/tests/critical_sections.rs Cargo.toml

crates/offload/tests/critical_sections.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
