/root/repo/target/debug/deps/arbalest_bench-14a53d20530f762d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_bench-14a53d20530f762d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
