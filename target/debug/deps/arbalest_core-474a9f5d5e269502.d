/root/repo/target/debug/deps/arbalest_core-474a9f5d5e269502.d: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/arbalest_core-474a9f5d5e269502: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/ddg.rs:
crates/core/src/detector.rs:
crates/core/src/replay.rs:
crates/core/src/vsm.rs:
