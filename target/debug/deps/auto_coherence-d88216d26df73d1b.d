/root/repo/target/debug/deps/auto_coherence-d88216d26df73d1b.d: tests/auto_coherence.rs Cargo.toml

/root/repo/target/debug/deps/libauto_coherence-d88216d26df73d1b.rmeta: tests/auto_coherence.rs Cargo.toml

tests/auto_coherence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
