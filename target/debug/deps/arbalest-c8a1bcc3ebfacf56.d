/root/repo/target/debug/deps/arbalest-c8a1bcc3ebfacf56.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libarbalest-c8a1bcc3ebfacf56.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
