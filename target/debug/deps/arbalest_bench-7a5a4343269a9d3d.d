/root/repo/target/debug/deps/arbalest_bench-7a5a4343269a9d3d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/arbalest_bench-7a5a4343269a9d3d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
