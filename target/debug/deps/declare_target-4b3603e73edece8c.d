/root/repo/target/debug/deps/declare_target-4b3603e73edece8c.d: crates/core/tests/declare_target.rs Cargo.toml

/root/repo/target/debug/deps/libdeclare_target-4b3603e73edece8c.rmeta: crates/core/tests/declare_target.rs Cargo.toml

crates/core/tests/declare_target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
