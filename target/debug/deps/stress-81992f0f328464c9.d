/root/repo/target/debug/deps/stress-81992f0f328464c9.d: crates/core/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-81992f0f328464c9.rmeta: crates/core/tests/stress.rs Cargo.toml

crates/core/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
