/root/repo/target/debug/deps/postencil_report-4fdc8128f0449e7a.d: crates/bench/src/bin/postencil_report.rs

/root/repo/target/debug/deps/postencil_report-4fdc8128f0449e7a: crates/bench/src/bin/postencil_report.rs

crates/bench/src/bin/postencil_report.rs:
