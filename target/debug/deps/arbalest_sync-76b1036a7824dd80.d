/root/repo/target/debug/deps/arbalest_sync-76b1036a7824dd80.d: crates/sync/src/lib.rs

/root/repo/target/debug/deps/arbalest_sync-76b1036a7824dd80: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
