/root/repo/target/debug/deps/declare_target-bf3fe9017ed1291f.d: crates/core/tests/declare_target.rs

/root/repo/target/debug/deps/declare_target-bf3fe9017ed1291f: crates/core/tests/declare_target.rs

crates/core/tests/declare_target.rs:
