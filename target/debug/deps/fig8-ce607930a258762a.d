/root/repo/target/debug/deps/fig8-ce607930a258762a.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ce607930a258762a: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
