/root/repo/target/debug/deps/arbalest-eec60d7c953edc00.d: src/lib.rs

/root/repo/target/debug/deps/libarbalest-eec60d7c953edc00.rmeta: src/lib.rs

src/lib.rs:
