/root/repo/target/debug/deps/auto_coherence-e2df568db9f5df72.d: tests/auto_coherence.rs

/root/repo/target/debug/deps/auto_coherence-e2df568db9f5df72: tests/auto_coherence.rs

tests/auto_coherence.rs:
