/root/repo/target/debug/deps/fault_recovery-b84fbc6ea80dc4b0.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-b84fbc6ea80dc4b0: tests/fault_recovery.rs

tests/fault_recovery.rs:
