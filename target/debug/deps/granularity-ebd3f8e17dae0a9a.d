/root/repo/target/debug/deps/granularity-ebd3f8e17dae0a9a.d: crates/core/tests/granularity.rs

/root/repo/target/debug/deps/granularity-ebd3f8e17dae0a9a: crates/core/tests/granularity.rs

crates/core/tests/granularity.rs:
