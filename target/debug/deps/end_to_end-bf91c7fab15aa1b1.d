/root/repo/target/debug/deps/end_to_end-bf91c7fab15aa1b1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-bf91c7fab15aa1b1: tests/end_to_end.rs

tests/end_to_end.rs:
