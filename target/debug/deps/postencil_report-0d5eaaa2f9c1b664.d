/root/repo/target/debug/deps/postencil_report-0d5eaaa2f9c1b664.d: crates/bench/src/bin/postencil_report.rs

/root/repo/target/debug/deps/libpostencil_report-0d5eaaa2f9c1b664.rmeta: crates/bench/src/bin/postencil_report.rs

crates/bench/src/bin/postencil_report.rs:
