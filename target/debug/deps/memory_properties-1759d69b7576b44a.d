/root/repo/target/debug/deps/memory_properties-1759d69b7576b44a.d: crates/offload/tests/memory_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_properties-1759d69b7576b44a.rmeta: crates/offload/tests/memory_properties.rs Cargo.toml

crates/offload/tests/memory_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
