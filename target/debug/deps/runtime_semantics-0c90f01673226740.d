/root/repo/target/debug/deps/runtime_semantics-0c90f01673226740.d: crates/offload/tests/runtime_semantics.rs

/root/repo/target/debug/deps/runtime_semantics-0c90f01673226740: crates/offload/tests/runtime_semantics.rs

crates/offload/tests/runtime_semantics.rs:
