/root/repo/target/debug/deps/arbalest-da6cefb36cae9f65.d: src/lib.rs

/root/repo/target/debug/deps/libarbalest-da6cefb36cae9f65.rlib: src/lib.rs

/root/repo/target/debug/deps/libarbalest-da6cefb36cae9f65.rmeta: src/lib.rs

src/lib.rs:
