/root/repo/target/debug/deps/arbalest-7cdec593cc97ee0c.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest-7cdec593cc97ee0c.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
