/root/repo/target/debug/deps/arbalest-c73b03ea37e12600.d: src/lib.rs

/root/repo/target/debug/deps/arbalest-c73b03ea37e12600: src/lib.rs

src/lib.rs:
