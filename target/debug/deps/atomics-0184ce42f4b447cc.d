/root/repo/target/debug/deps/atomics-0184ce42f4b447cc.d: crates/offload/tests/atomics.rs

/root/repo/target/debug/deps/atomics-0184ce42f4b447cc: crates/offload/tests/atomics.rs

crates/offload/tests/atomics.rs:
