/root/repo/target/debug/deps/fig9-c5d36f52a3e88b19.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-c5d36f52a3e88b19: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
