/root/repo/target/debug/deps/ablations-a3aff4fb86f44654.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a3aff4fb86f44654: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
