/root/repo/target/debug/deps/arbalest-5ce4c7f5da0de670.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest-5ce4c7f5da0de670.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
