/root/repo/target/debug/deps/runtime_semantics-5ec47c86abc1c9ce.d: crates/offload/tests/runtime_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_semantics-5ec47c86abc1c9ce.rmeta: crates/offload/tests/runtime_semantics.rs Cargo.toml

crates/offload/tests/runtime_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
