/root/repo/target/debug/deps/oracle-742a5260ecdee896.d: tests/oracle.rs Cargo.toml

/root/repo/target/debug/deps/liboracle-742a5260ecdee896.rmeta: tests/oracle.rs Cargo.toml

tests/oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
