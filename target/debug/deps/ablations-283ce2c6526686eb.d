/root/repo/target/debug/deps/ablations-283ce2c6526686eb.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-283ce2c6526686eb.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
