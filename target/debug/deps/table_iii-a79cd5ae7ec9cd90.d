/root/repo/target/debug/deps/table_iii-a79cd5ae7ec9cd90.d: crates/dracc/tests/table_iii.rs

/root/repo/target/debug/deps/table_iii-a79cd5ae7ec9cd90: crates/dracc/tests/table_iii.rs

crates/dracc/tests/table_iii.rs:
