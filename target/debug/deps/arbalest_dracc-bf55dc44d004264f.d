/root/repo/target/debug/deps/arbalest_dracc-bf55dc44d004264f.d: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/debug/deps/libarbalest_dracc-bf55dc44d004264f.rlib: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

/root/repo/target/debug/deps/libarbalest_dracc-bf55dc44d004264f.rmeta: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs

crates/dracc/src/lib.rs:
crates/dracc/src/buggy.rs:
crates/dracc/src/correct.rs:
