/root/repo/target/debug/deps/arbalest_offload-4076e9d997d34e6d.d: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_offload-4076e9d997d34e6d.rmeta: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs Cargo.toml

crates/offload/src/lib.rs:
crates/offload/src/addr.rs:
crates/offload/src/buffer.rs:
crates/offload/src/error.rs:
crates/offload/src/events.rs:
crates/offload/src/fault.rs:
crates/offload/src/mapping.rs:
crates/offload/src/mem.rs:
crates/offload/src/report.rs:
crates/offload/src/runtime.rs:
crates/offload/src/scalar.rs:
crates/offload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
