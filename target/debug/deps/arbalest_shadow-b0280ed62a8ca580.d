/root/repo/target/debug/deps/arbalest_shadow-b0280ed62a8ca580.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/debug/deps/libarbalest_shadow-b0280ed62a8ca580.rlib: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/debug/deps/libarbalest_shadow-b0280ed62a8ca580.rmeta: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
