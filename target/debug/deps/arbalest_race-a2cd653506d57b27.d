/root/repo/target/debug/deps/arbalest_race-a2cd653506d57b27.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_race-a2cd653506d57b27.rmeta: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs Cargo.toml

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
