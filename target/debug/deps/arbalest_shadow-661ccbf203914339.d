/root/repo/target/debug/deps/arbalest_shadow-661ccbf203914339.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/debug/deps/libarbalest_shadow-661ccbf203914339.rmeta: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
