/root/repo/target/debug/deps/soak-1e458c1db8219d50.d: tests/soak.rs Cargo.toml

/root/repo/target/debug/deps/libsoak-1e458c1db8219d50.rmeta: tests/soak.rs Cargo.toml

tests/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
