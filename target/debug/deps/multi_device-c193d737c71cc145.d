/root/repo/target/debug/deps/multi_device-c193d737c71cc145.d: crates/core/tests/multi_device.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_device-c193d737c71cc145.rmeta: crates/core/tests/multi_device.rs Cargo.toml

crates/core/tests/multi_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
