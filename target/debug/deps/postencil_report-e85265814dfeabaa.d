/root/repo/target/debug/deps/postencil_report-e85265814dfeabaa.d: crates/bench/src/bin/postencil_report.rs Cargo.toml

/root/repo/target/debug/deps/libpostencil_report-e85265814dfeabaa.rmeta: crates/bench/src/bin/postencil_report.rs Cargo.toml

crates/bench/src/bin/postencil_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
