/root/repo/target/debug/deps/critical_sections-fab8d422256f807b.d: crates/offload/tests/critical_sections.rs

/root/repo/target/debug/deps/critical_sections-fab8d422256f807b: crates/offload/tests/critical_sections.rs

crates/offload/tests/critical_sections.rs:
