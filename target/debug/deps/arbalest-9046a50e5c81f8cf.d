/root/repo/target/debug/deps/arbalest-9046a50e5c81f8cf.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/arbalest-9046a50e5c81f8cf: crates/cli/src/main.rs

crates/cli/src/main.rs:
