/root/repo/target/debug/deps/table3-04f18f08cc27fa6b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-04f18f08cc27fa6b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
