/root/repo/target/debug/deps/granularity-61de3f629e12c1b6.d: crates/core/tests/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-61de3f629e12c1b6.rmeta: crates/core/tests/granularity.rs Cargo.toml

crates/core/tests/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
