/root/repo/target/debug/deps/arbalest_dracc-eac251f07f3be3d6.d: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_dracc-eac251f07f3be3d6.rmeta: crates/dracc/src/lib.rs crates/dracc/src/buggy.rs crates/dracc/src/correct.rs Cargo.toml

crates/dracc/src/lib.rs:
crates/dracc/src/buggy.rs:
crates/dracc/src/correct.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
