/root/repo/target/debug/deps/arbalest_shadow-cc65db2df6d5c05e.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_shadow-cc65db2df6d5c05e.rmeta: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs Cargo.toml

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
