/root/repo/target/debug/deps/arbalest_sync-1f8a4c46ebedd60d.d: crates/sync/src/lib.rs

/root/repo/target/debug/deps/libarbalest_sync-1f8a4c46ebedd60d.rlib: crates/sync/src/lib.rs

/root/repo/target/debug/deps/libarbalest_sync-1f8a4c46ebedd60d.rmeta: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
