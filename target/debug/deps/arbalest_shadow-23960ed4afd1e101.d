/root/repo/target/debug/deps/arbalest_shadow-23960ed4afd1e101.d: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

/root/repo/target/debug/deps/arbalest_shadow-23960ed4afd1e101: crates/shadow/src/lib.rs crates/shadow/src/interval.rs crates/shadow/src/map.rs crates/shadow/src/word.rs

crates/shadow/src/lib.rs:
crates/shadow/src/interval.rs:
crates/shadow/src/map.rs:
crates/shadow/src/word.rs:
