/root/repo/target/debug/deps/arbalest_spec-2106d4cd9c8199c3.d: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_spec-2106d4cd9c8199c3.rmeta: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs Cargo.toml

crates/spec/src/lib.rs:
crates/spec/src/pcg.rs:
crates/spec/src/pep.rs:
crates/spec/src/polbm.rs:
crates/spec/src/pomriq.rs:
crates/spec/src/postencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
