/root/repo/target/debug/deps/arbalest_baselines-eaae2deaac67421d.d: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/debug/deps/libarbalest_baselines-eaae2deaac67421d.rlib: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/debug/deps/libarbalest_baselines-eaae2deaac67421d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

crates/baselines/src/lib.rs:
crates/baselines/src/archer.rs:
crates/baselines/src/asan.rs:
crates/baselines/src/memcheck.rs:
crates/baselines/src/msan.rs:
crates/baselines/src/sink.rs:
