/root/repo/target/debug/deps/arbalest_race-4698283665990a3c.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/debug/deps/libarbalest_race-4698283665990a3c.rlib: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/debug/deps/libarbalest_race-4698283665990a3c.rmeta: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
