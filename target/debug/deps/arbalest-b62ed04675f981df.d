/root/repo/target/debug/deps/arbalest-b62ed04675f981df.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest-b62ed04675f981df.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
