/root/repo/target/debug/deps/arbalest_core-7c471ae8e3291e9b.d: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

/root/repo/target/debug/deps/libarbalest_core-7c471ae8e3291e9b.rmeta: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs

crates/core/src/lib.rs:
crates/core/src/ddg.rs:
crates/core/src/detector.rs:
crates/core/src/replay.rs:
crates/core/src/vsm.rs:
