/root/repo/target/debug/deps/fig9-a62167c0beab1c0b.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-a62167c0beab1c0b.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
