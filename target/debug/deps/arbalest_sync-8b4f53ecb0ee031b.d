/root/repo/target/debug/deps/arbalest_sync-8b4f53ecb0ee031b.d: crates/sync/src/lib.rs

/root/repo/target/debug/deps/libarbalest_sync-8b4f53ecb0ee031b.rmeta: crates/sync/src/lib.rs

crates/sync/src/lib.rs:
