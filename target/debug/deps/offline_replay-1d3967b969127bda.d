/root/repo/target/debug/deps/offline_replay-1d3967b969127bda.d: crates/core/tests/offline_replay.rs

/root/repo/target/debug/deps/offline_replay-1d3967b969127bda: crates/core/tests/offline_replay.rs

crates/core/tests/offline_replay.rs:
