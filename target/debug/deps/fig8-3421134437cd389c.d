/root/repo/target/debug/deps/fig8-3421134437cd389c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/libfig8-3421134437cd389c.rmeta: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
