/root/repo/target/debug/deps/extended_constructs-f2bc1bc7ca696b5f.d: crates/offload/tests/extended_constructs.rs Cargo.toml

/root/repo/target/debug/deps/libextended_constructs-f2bc1bc7ca696b5f.rmeta: crates/offload/tests/extended_constructs.rs Cargo.toml

crates/offload/tests/extended_constructs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
