/root/repo/target/debug/deps/stress-6db79b7d2418a7b8.d: crates/core/tests/stress.rs

/root/repo/target/debug/deps/stress-6db79b7d2418a7b8: crates/core/tests/stress.rs

crates/core/tests/stress.rs:
