/root/repo/target/debug/deps/arbalest_offload-b7340d82694e8d58.d: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs

/root/repo/target/debug/deps/libarbalest_offload-b7340d82694e8d58.rmeta: crates/offload/src/lib.rs crates/offload/src/addr.rs crates/offload/src/buffer.rs crates/offload/src/error.rs crates/offload/src/events.rs crates/offload/src/fault.rs crates/offload/src/mapping.rs crates/offload/src/mem.rs crates/offload/src/report.rs crates/offload/src/runtime.rs crates/offload/src/scalar.rs crates/offload/src/trace.rs

crates/offload/src/lib.rs:
crates/offload/src/addr.rs:
crates/offload/src/buffer.rs:
crates/offload/src/error.rs:
crates/offload/src/events.rs:
crates/offload/src/fault.rs:
crates/offload/src/mapping.rs:
crates/offload/src/mem.rs:
crates/offload/src/report.rs:
crates/offload/src/runtime.rs:
crates/offload/src/scalar.rs:
crates/offload/src/trace.rs:
