/root/repo/target/debug/deps/arbalest_race-8167ebab3c13da59.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

/root/repo/target/debug/deps/arbalest_race-8167ebab3c13da59: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
