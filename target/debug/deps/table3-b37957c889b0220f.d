/root/repo/target/debug/deps/table3-b37957c889b0220f.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-b37957c889b0220f.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
