/root/repo/target/debug/deps/arbalest_core-6923339730391aaf.d: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_core-6923339730391aaf.rmeta: crates/core/src/lib.rs crates/core/src/ddg.rs crates/core/src/detector.rs crates/core/src/replay.rs crates/core/src/vsm.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ddg.rs:
crates/core/src/detector.rs:
crates/core/src/replay.rs:
crates/core/src/vsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
