/root/repo/target/debug/deps/ablations-fa4a4b7a9266ff17.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-fa4a4b7a9266ff17.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
