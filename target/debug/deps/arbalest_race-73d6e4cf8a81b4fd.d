/root/repo/target/debug/deps/arbalest_race-73d6e4cf8a81b4fd.d: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs Cargo.toml

/root/repo/target/debug/deps/libarbalest_race-73d6e4cf8a81b4fd.rmeta: crates/race/src/lib.rs crates/race/src/clock.rs crates/race/src/engine.rs Cargo.toml

crates/race/src/lib.rs:
crates/race/src/clock.rs:
crates/race/src/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
