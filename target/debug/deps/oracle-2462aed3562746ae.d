/root/repo/target/debug/deps/oracle-2462aed3562746ae.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-2462aed3562746ae: tests/oracle.rs

tests/oracle.rs:
