/root/repo/target/debug/deps/memory_properties-b829c878f705f9eb.d: crates/offload/tests/memory_properties.rs

/root/repo/target/debug/deps/memory_properties-b829c878f705f9eb: crates/offload/tests/memory_properties.rs

crates/offload/tests/memory_properties.rs:
