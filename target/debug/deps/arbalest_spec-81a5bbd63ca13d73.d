/root/repo/target/debug/deps/arbalest_spec-81a5bbd63ca13d73.d: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

/root/repo/target/debug/deps/libarbalest_spec-81a5bbd63ca13d73.rmeta: crates/spec/src/lib.rs crates/spec/src/pcg.rs crates/spec/src/pep.rs crates/spec/src/polbm.rs crates/spec/src/pomriq.rs crates/spec/src/postencil.rs

crates/spec/src/lib.rs:
crates/spec/src/pcg.rs:
crates/spec/src/pep.rs:
crates/spec/src/polbm.rs:
crates/spec/src/pomriq.rs:
crates/spec/src/postencil.rs:
