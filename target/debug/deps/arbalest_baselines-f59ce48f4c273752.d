/root/repo/target/debug/deps/arbalest_baselines-f59ce48f4c273752.d: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

/root/repo/target/debug/deps/libarbalest_baselines-f59ce48f4c273752.rmeta: crates/baselines/src/lib.rs crates/baselines/src/archer.rs crates/baselines/src/asan.rs crates/baselines/src/memcheck.rs crates/baselines/src/msan.rs crates/baselines/src/sink.rs

crates/baselines/src/lib.rs:
crates/baselines/src/archer.rs:
crates/baselines/src/asan.rs:
crates/baselines/src/memcheck.rs:
crates/baselines/src/msan.rs:
crates/baselines/src/sink.rs:
