/root/repo/target/debug/libarbalest_sync.rlib: /root/repo/crates/sync/src/lib.rs
