/root/repo/target/debug/examples/unified_memory-f832e07dfd77416a.d: examples/unified_memory.rs

/root/repo/target/debug/examples/unified_memory-f832e07dfd77416a: examples/unified_memory.rs

examples/unified_memory.rs:
