/root/repo/target/debug/examples/auto_repair-f5f8246e08b9b86f.d: examples/auto_repair.rs Cargo.toml

/root/repo/target/debug/examples/libauto_repair-f5f8246e08b9b86f.rmeta: examples/auto_repair.rs Cargo.toml

examples/auto_repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
