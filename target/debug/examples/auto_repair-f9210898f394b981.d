/root/repo/target/debug/examples/auto_repair-f9210898f394b981.d: examples/auto_repair.rs

/root/repo/target/debug/examples/auto_repair-f9210898f394b981: examples/auto_repair.rs

examples/auto_repair.rs:
