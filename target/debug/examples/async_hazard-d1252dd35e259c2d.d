/root/repo/target/debug/examples/async_hazard-d1252dd35e259c2d.d: examples/async_hazard.rs Cargo.toml

/root/repo/target/debug/examples/libasync_hazard-d1252dd35e259c2d.rmeta: examples/async_hazard.rs Cargo.toml

examples/async_hazard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
