/root/repo/target/debug/examples/tool_shootout-caa9a26905818234.d: examples/tool_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libtool_shootout-caa9a26905818234.rmeta: examples/tool_shootout.rs Cargo.toml

examples/tool_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
