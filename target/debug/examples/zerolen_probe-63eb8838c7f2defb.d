/root/repo/target/debug/examples/zerolen_probe-63eb8838c7f2defb.d: examples/zerolen_probe.rs

/root/repo/target/debug/examples/zerolen_probe-63eb8838c7f2defb: examples/zerolen_probe.rs

examples/zerolen_probe.rs:
