/root/repo/target/debug/examples/tool_shootout-048c8cc85c9fad53.d: examples/tool_shootout.rs

/root/repo/target/debug/examples/tool_shootout-048c8cc85c9fad53: examples/tool_shootout.rs

examples/tool_shootout.rs:
