/root/repo/target/debug/examples/unified_memory-fa6b59e3468ffab7.d: examples/unified_memory.rs Cargo.toml

/root/repo/target/debug/examples/libunified_memory-fa6b59e3468ffab7.rmeta: examples/unified_memory.rs Cargo.toml

examples/unified_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
