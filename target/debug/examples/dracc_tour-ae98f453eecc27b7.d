/root/repo/target/debug/examples/dracc_tour-ae98f453eecc27b7.d: examples/dracc_tour.rs

/root/repo/target/debug/examples/dracc_tour-ae98f453eecc27b7: examples/dracc_tour.rs

examples/dracc_tour.rs:
