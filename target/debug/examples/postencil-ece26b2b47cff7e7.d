/root/repo/target/debug/examples/postencil-ece26b2b47cff7e7.d: examples/postencil.rs Cargo.toml

/root/repo/target/debug/examples/libpostencil-ece26b2b47cff7e7.rmeta: examples/postencil.rs Cargo.toml

examples/postencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
