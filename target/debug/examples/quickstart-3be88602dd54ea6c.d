/root/repo/target/debug/examples/quickstart-3be88602dd54ea6c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3be88602dd54ea6c: examples/quickstart.rs

examples/quickstart.rs:
