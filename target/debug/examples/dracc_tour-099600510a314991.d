/root/repo/target/debug/examples/dracc_tour-099600510a314991.d: examples/dracc_tour.rs Cargo.toml

/root/repo/target/debug/examples/libdracc_tour-099600510a314991.rmeta: examples/dracc_tour.rs Cargo.toml

examples/dracc_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
