/root/repo/target/debug/examples/postencil-ecf0d6c7b608e6e1.d: examples/postencil.rs

/root/repo/target/debug/examples/postencil-ecf0d6c7b608e6e1: examples/postencil.rs

examples/postencil.rs:
