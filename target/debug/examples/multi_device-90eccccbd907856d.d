/root/repo/target/debug/examples/multi_device-90eccccbd907856d.d: examples/multi_device.rs

/root/repo/target/debug/examples/multi_device-90eccccbd907856d: examples/multi_device.rs

examples/multi_device.rs:
