/root/repo/target/debug/examples/async_hazard-f6ee48dc7335b118.d: examples/async_hazard.rs

/root/repo/target/debug/examples/async_hazard-f6ee48dc7335b118: examples/async_hazard.rs

examples/async_hazard.rs:
